package dag

import (
	"strings"
	"testing"
)

func chain(t *testing.T, names ...string) *Graph {
	t.Helper()
	g := New()
	for _, n := range names {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.AddEdge(names[i], names[i+1], MatchDep); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("a")
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.AddNode("a")
	if err := g.AddEdge("a", "b", MatchDep); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge("b", "a", MatchDep); err == nil {
		t.Error("edge from unknown node accepted")
	}
	if err := g.AddEdge("a", "a", MatchDep); err == nil {
		t.Error("self-edge accepted")
	}
}

func TestDuplicateEdgeKeepsStrongest(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.AddEdge("a", "b", ControlDep); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b", MatchDep); err != nil {
		t.Fatal(err)
	}
	es := g.Out("a")
	if len(es) != 1 {
		t.Fatalf("edge count = %d, want 1", len(es))
	}
	if es[0].Kind != MatchDep {
		t.Errorf("kind = %v, want match (strongest)", es[0].Kind)
	}
	// Weaker duplicates do not downgrade.
	if err := g.AddEdge("a", "b", ActionDep); err != nil {
		t.Fatal(err)
	}
	if g.Out("a")[0].Kind != MatchDep {
		t.Error("weaker duplicate downgraded the edge")
	}
	if g.In("b")[0].Kind != MatchDep {
		t.Error("incoming mirror not upgraded")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := chain(t, "t1", "t2", "t3", "t4")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"t1", "t2", "t3", "t4"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortStable(t *testing.T) {
	// Independent nodes keep insertion order.
	g := New()
	for _, n := range []string{"c", "a", "b"} {
		g.AddNode(n)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "c" || order[1] != "a" || order[2] != "b" {
		t.Errorf("order = %v, want insertion order [c a b]", order)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := New()
	for _, n := range []string{"s", "l", "r", "t"} {
		g.AddNode(n)
	}
	mustEdge := func(a, b string) {
		t.Helper()
		if err := g.AddEdge(a, b, ActionDep); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge("s", "l")
	mustEdge("s", "r")
	mustEdge("l", "t")
	mustEdge("r", "t")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["s"] < pos["l"] && pos["s"] < pos["r"] && pos["l"] < pos["t"] && pos["r"] < pos["t"]) {
		t.Errorf("order %v violates diamond dependencies", order)
	}
	cp, err := g.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Errorf("critical path = %d, want 3", cp)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.AddEdge("a", "b", MatchDep); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "a", MatchDep); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort succeeded on a cycle")
	}
	if _, err := g.CriticalPathLen(); err == nil {
		t.Error("CriticalPathLen succeeded on a cycle")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	order, err := g.TopoSort()
	if err != nil || len(order) != 0 {
		t.Errorf("TopoSort empty = %v, %v", order, err)
	}
	cp, err := g.CriticalPathLen()
	if err != nil || cp != 0 {
		t.Errorf("CriticalPathLen empty = %d, %v", cp, err)
	}
}

func TestStringRendering(t *testing.T) {
	g := chain(t, "x", "y")
	s := g.String()
	if !strings.Contains(s, "x -> y [match]") {
		t.Errorf("String output missing edge: %s", s)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New()
	for _, n := range []string{"b", "a", "c"} {
		g.AddNode(n)
	}
	_ = g.AddEdge("b", "c", ControlDep)
	_ = g.AddEdge("a", "c", ControlDep)
	es := g.Edges()
	if es[0].From != "a" || es[1].From != "b" {
		t.Errorf("Edges not sorted: %v", es)
	}
}
