package phv

import (
	"testing"
	"testing/quick"
)

func TestWidthConstruction(t *testing.T) {
	for _, bits := range []int{0, -1, 63, 100} {
		if _, err := NewWidth(bits); err == nil {
			t.Errorf("NewWidth(%d) succeeded", bits)
		}
	}
	w, err := NewWidth(8)
	if err != nil {
		t.Fatal(err)
	}
	if w.Bits() != 8 || w.Mask() != 255 || !w.Valid() {
		t.Errorf("w = %+v", w)
	}
	var zero Width
	if zero.Valid() {
		t.Error("zero Width reports Valid")
	}
}

func TestMustWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWidth(0) did not panic")
		}
	}()
	MustWidth(0)
}

func TestWidthArithmetic(t *testing.T) {
	w := MustWidth(8)
	cases := []struct {
		name string
		got  Value
		want Value
	}{
		{"add wrap", w.Add(200, 100), 44},
		{"sub wrap", w.Sub(1, 2), 255},
		{"mul wrap", w.Mul(16, 17), 16},
		{"div", w.Div(100, 7), 14},
		{"div zero", w.Div(5, 0), 0},
		{"mod", w.Mod(100, 7), 2},
		{"mod zero", w.Mod(5, 0), 0},
		{"trunc neg", w.Trunc(-1), 255},
		{"trunc big", w.Trunc(511), 255},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
}

// Property: every arithmetic result stays within the width's range.
func TestWidthResultsInRange(t *testing.T) {
	w := MustWidth(12)
	f := func(a, b int64) bool {
		for _, v := range []Value{w.Add(w.Trunc(a), w.Trunc(b)), w.Sub(w.Trunc(a), w.Trunc(b)),
			w.Mul(w.Trunc(a), w.Trunc(b)), w.Div(w.Trunc(a), w.Trunc(b)), w.Mod(w.Trunc(a), w.Trunc(b))} {
			if v < 0 || v > w.Mask() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolTruthy(t *testing.T) {
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Error("Bool encoding broken")
	}
	if Truthy(0) || !Truthy(1) || !Truthy(-5) {
		t.Error("Truthy broken")
	}
}

func TestPHVBasics(t *testing.T) {
	p := New(3)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Set(1, 42)
	if p.Get(1) != 42 || p.Get(0) != 0 {
		t.Error("Set/Get broken")
	}
	q := FromValues([]Value{1, 2, 3})
	if q.String() != "[1 2 3]" {
		t.Errorf("String = %q", q.String())
	}
	vals := q.Values()
	vals[0] = 99
	if q.Get(0) != 1 {
		t.Error("Values does not copy")
	}
	c := q.Clone()
	c.Set(0, 7)
	if q.Get(0) != 1 {
		t.Error("Clone shares storage")
	}
	if !q.Equal(FromValues([]Value{1, 2, 3})) {
		t.Error("Equal broken")
	}
	if q.Equal(FromValues([]Value{1, 2})) || q.Equal(FromValues([]Value{1, 2, 4})) {
		t.Error("Equal false positives")
	}
	r := New(3)
	r.CopyFrom(q)
	if !r.Equal(q) {
		t.Error("CopyFrom broken")
	}
}

func TestTraceDiff(t *testing.T) {
	a := NewTrace()
	b := NewTrace()
	a.Append(FromValues([]Value{1}))
	b.Append(FromValues([]Value{1}))
	if d := a.Diff(b); d != "" {
		t.Errorf("Diff of equal traces = %q", d)
	}
	b.Append(FromValues([]Value{2}))
	if d := a.Diff(b); d == "" {
		t.Error("length mismatch not reported")
	}
	a.Append(FromValues([]Value{3}))
	if d := a.Diff(b); d == "" {
		t.Error("value mismatch not reported")
	}
	if a.Equal(b) {
		t.Error("Equal false positive")
	}
}

func TestTraceClone(t *testing.T) {
	a := NewTrace()
	a.Append(FromValues([]Value{5}))
	c := a.Clone()
	c.At(0).Set(0, 9)
	if a.At(0).Get(0) != 5 {
		t.Error("Clone shares PHVs")
	}
}

func TestTraceString(t *testing.T) {
	a := NewTrace()
	for i := 0; i < 10; i++ {
		a.Append(FromValues([]Value{Value(i)}))
	}
	s := a.String()
	if len(s) == 0 || s[:10] != "Trace(len=" {
		t.Errorf("String = %q", s)
	}
}

func TestStateSnapshot(t *testing.T) {
	s := StateSnapshot{{{1, 2}, {3}}, {{4}}}
	c := s.Clone()
	c[0][0][0] = 99
	if s[0][0][0] != 1 {
		t.Error("Clone shares storage")
	}
	if !s.Equal(s.Clone()) {
		t.Error("Equal broken")
	}
	if s.Equal(StateSnapshot{{{1, 2}, {3}}}) {
		t.Error("Equal ignores shape")
	}
	if s.Equal(StateSnapshot{{{1, 2}, {9}}, {{4}}}) {
		t.Error("Equal ignores content")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}
