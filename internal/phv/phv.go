// Package phv models packet header vectors (PHVs), the unit of data that
// flows through a Druzhba pipeline.
//
// A PHV is a vector of containers, each holding one packet field or metadata
// field as an unsigned integer of a configurable bit width. All arithmetic
// performed on container values wraps modulo 2^width, mirroring the
// fixed-width datapaths of switching chips.
package phv

import (
	"fmt"
	"strings"
)

// Value is the scalar carried by one PHV container or one state slot.
// It is stored in an int64 but always holds an unsigned value already
// masked to the pipeline's bit width.
type Value = int64

// Width describes the bit width of every container and state slot in a
// pipeline. The zero Width is not valid; use NewWidth.
type Width struct {
	bits int
	mask int64
}

// NewWidth returns a Width for bit widths between 1 and 62 inclusive.
func NewWidth(bits int) (Width, error) {
	if bits < 1 || bits > 62 {
		return Width{}, fmt.Errorf("phv: bit width %d out of range [1,62]", bits)
	}
	return Width{bits: bits, mask: (int64(1) << uint(bits)) - 1}, nil
}

// MustWidth is NewWidth for known-good constants; it panics on error.
func MustWidth(bits int) Width {
	w, err := NewWidth(bits)
	if err != nil {
		panic(err)
	}
	return w
}

// Default32 is the default 32-bit datapath width.
var Default32 = MustWidth(32)

// Bits reports the number of bits in the width.
func (w Width) Bits() int { return w.bits }

// Mask returns the value mask (2^bits - 1).
func (w Width) Mask() int64 { return w.mask }

// Valid reports whether the width was constructed with NewWidth.
func (w Width) Valid() bool { return w.mask != 0 }

// Trunc masks v to the width, interpreting v as a two's-complement bit
// pattern. Negative intermediate results therefore wrap the same way
// hardware subtraction does.
func (w Width) Trunc(v int64) Value { return v & w.mask }

// Add returns (a+b) mod 2^bits.
func (w Width) Add(a, b Value) Value { return (a + b) & w.mask }

// Sub returns (a-b) mod 2^bits.
func (w Width) Sub(a, b Value) Value { return (a - b) & w.mask }

// Mul returns (a*b) mod 2^bits.
func (w Width) Mul(a, b Value) Value { return (a * b) & w.mask }

// Div returns a/b, or 0 when b is 0 (total division, as in Banzai).
func (w Width) Div(a, b Value) Value {
	if b == 0 {
		return 0
	}
	return (a / b) & w.mask
}

// Mod returns a%b, or 0 when b is 0.
func (w Width) Mod(a, b Value) Value {
	if b == 0 {
		return 0
	}
	return (a % b) & w.mask
}

// Bool converts a Go bool to the DSL's 0/1 encoding.
func Bool(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// Truthy reports whether a DSL value is treated as true.
func Truthy(v Value) bool { return v != 0 }

// PHV is one packet header vector: a fixed-length vector of containers.
type PHV struct {
	containers []Value
}

// New returns a PHV with n zeroed containers.
func New(n int) *PHV {
	return &PHV{containers: make([]Value, n)}
}

// FromValues returns a PHV holding a copy of vals.
func FromValues(vals []Value) *PHV {
	c := make([]Value, len(vals))
	copy(c, vals)
	return &PHV{containers: c}
}

// Len reports the number of containers.
func (p *PHV) Len() int { return len(p.containers) }

// Get returns container i.
func (p *PHV) Get(i int) Value { return p.containers[i] }

// Set stores v into container i.
func (p *PHV) Set(i int, v Value) { p.containers[i] = v }

// Values returns a copy of the container vector.
func (p *PHV) Values() []Value {
	out := make([]Value, len(p.containers))
	copy(out, p.containers)
	return out
}

// Raw returns the underlying container slice without copying. Callers must
// not retain it across mutations of the PHV.
func (p *PHV) Raw() []Value { return p.containers }

// Clone returns a deep copy of the PHV.
func (p *PHV) Clone() *PHV { return FromValues(p.containers) }

// CopyFrom overwrites this PHV's containers with src's. The two PHVs must
// have the same length.
func (p *PHV) CopyFrom(src *PHV) {
	copy(p.containers, src.containers)
}

// Equal reports whether two PHVs hold identical container vectors.
func (p *PHV) Equal(q *PHV) bool {
	if p.Len() != q.Len() {
		return false
	}
	for i, v := range p.containers {
		if q.containers[i] != v {
			return false
		}
	}
	return true
}

// String renders the PHV as "[v0 v1 ...]".
func (p *PHV) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range p.containers {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// Trace is an ordered sequence of PHVs: the input trace fed into a pipeline
// or specification, or the output trace it produced (§3.3 of the paper).
type Trace struct {
	phvs []*PHV
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Append adds a PHV to the trace (the trace takes ownership).
func (t *Trace) Append(p *PHV) { t.phvs = append(t.phvs, p) }

// Len reports the number of PHVs recorded.
func (t *Trace) Len() int { return len(t.phvs) }

// At returns the i-th PHV.
func (t *Trace) At(i int) *PHV { return t.phvs[i] }

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{phvs: make([]*PHV, len(t.phvs))}
	for i, p := range t.phvs {
		out.phvs[i] = p.Clone()
	}
	return out
}

// Diff compares two traces and returns a human-readable description of the
// first mismatch, or "" when the traces are identical.
func (t *Trace) Diff(other *Trace) string {
	if t.Len() != other.Len() {
		return fmt.Sprintf("trace length mismatch: %d vs %d", t.Len(), other.Len())
	}
	for i := range t.phvs {
		a, b := t.phvs[i], other.phvs[i]
		if !a.Equal(b) {
			return fmt.Sprintf("PHV %d mismatch: %s vs %s", i, a, b)
		}
	}
	return ""
}

// Equal reports whether two traces are identical.
func (t *Trace) Equal(other *Trace) bool { return t.Diff(other) == "" }

// String renders at most the first 8 PHVs of the trace.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace(len=%d)", t.Len())
	for i, p := range t.phvs {
		if i == 8 {
			b.WriteString(" ...")
			break
		}
		b.WriteByte(' ')
		b.WriteString(p.String())
	}
	return b.String()
}

// StateSnapshot is a copy of every stateful ALU's state vector at one moment
// of simulation, indexed [stage][alu][slot].
type StateSnapshot [][][]Value

// Clone deep-copies the snapshot.
func (s StateSnapshot) Clone() StateSnapshot {
	out := make(StateSnapshot, len(s))
	for i, stage := range s {
		out[i] = make([][]Value, len(stage))
		for j, alu := range stage {
			out[i][j] = append([]Value(nil), alu...)
		}
	}
	return out
}

// Equal reports whether two snapshots are identical in shape and content.
func (s StateSnapshot) Equal(o StateSnapshot) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if len(s[i]) != len(o[i]) {
			return false
		}
		for j := range s[i] {
			if len(s[i][j]) != len(o[i][j]) {
				return false
			}
			for k := range s[i][j] {
				if s[i][j][k] != o[i][j][k] {
					return false
				}
			}
		}
	}
	return true
}

// String renders the snapshot compactly.
func (s StateSnapshot) String() string {
	var b strings.Builder
	for i, stage := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "stage%d:%v", i, stage)
	}
	return b.String()
}
