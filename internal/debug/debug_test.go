package debug

import (
	"strings"
	"testing"

	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
)

// counterSession builds a 1x1 raw-atom accumulator over a fixed trace.
func counterSession(t *testing.T, inputs []phv.Value) *Session {
	t.Helper()
	s := core.Spec{Depth: 1, Width: 1, StatelessALU: atoms.MustLoad("stateless_full"), StatefulALU: atoms.MustLoad("raw")}
	req, err := s.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	code.Set(machinecode.ALUHoleName(0, true, 0, "mux2_0"), 0) // state += pkt
	code.Set(machinecode.OutputMuxName(0, 0), 2)               // container <- stateful
	p, err := core.Build(s, code, core.SCCInlining)
	if err != nil {
		t.Fatal(err)
	}
	trace := phv.NewTrace()
	for _, v := range inputs {
		trace.Append(phv.FromValues([]phv.Value{v}))
	}
	sess, err := NewSession(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSessionNavigation(t *testing.T) {
	s := counterSession(t, []phv.Value{5, 10, 20})
	if s.Ticks() != 3 { // 3 PHVs, depth 1
		t.Fatalf("ticks = %d, want 3", s.Ticks())
	}
	if s.Tick() != 0 {
		t.Errorf("initial tick = %d", s.Tick())
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Tick() != 1 {
		t.Errorf("tick after Step = %d", s.Tick())
	}
	if err := s.Back(); err != nil {
		t.Fatal(err)
	}
	if s.Tick() != 0 {
		t.Errorf("tick after Back = %d", s.Tick())
	}
	if err := s.Back(); err == nil {
		t.Error("Back before tick 0 succeeded")
	}
	if err := s.Goto(99); err == nil {
		t.Error("Goto out of range succeeded")
	}
}

func TestSessionStateHistory(t *testing.T) {
	s := counterSession(t, []phv.Value{5, 10, 20})
	// The accumulator state after each tick: 5, 15, 35.
	want := []phv.Value{5, 15, 35}
	for tk, wv := range want {
		if err := s.Goto(tk); err != nil {
			t.Fatal(err)
		}
		v, err := s.StateValue(0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != wv {
			t.Errorf("tick %d: state = %d, want %d", tk, v, wv)
		}
	}
	// Rewinding must show the old state again (time travel).
	if err := s.Goto(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.StateValue(0, 0, 0); v != 5 {
		t.Errorf("rewound state = %d, want 5", v)
	}
}

func TestSessionWatchAndBreak(t *testing.T) {
	s := counterSession(t, []phv.Value{1, 1, 1, 1})
	vals, err := s.Watch(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != int64(i+1) {
			t.Errorf("watch[%d] = %d, want %d", i, v, i+1)
		}
	}
	tk, err := s.BreakOnState(0, 0, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk != 2 {
		t.Errorf("break tick = %d, want 2", tk)
	}
	tk, err = s.BreakOnState(0, 0, 0, 99, 0)
	if err != nil || tk != -1 {
		t.Errorf("missing value: tick = %d, err %v; want -1, nil", tk, err)
	}
	if _, err := s.Watch(5, 0, 0); err == nil {
		t.Error("Watch accepted bad stage")
	}
}

func TestSessionSlots(t *testing.T) {
	s := counterSession(t, []phv.Value{7})
	if err := s.Goto(0); err != nil {
		t.Fatal(err)
	}
	slots := s.Slots()
	// Depth 1: slots [stage0, done]; after tick 0 the PHV finished stage 0
	// and waits in the completion slot.
	if slots[0] != nil {
		t.Errorf("slot 0 = %v, want empty", slots[0])
	}
	if slots[1] == nil || slots[1][0] != 7 {
		t.Errorf("completion slot = %v, want [7]", slots[1])
	}
}

func TestREPLScript(t *testing.T) {
	s := counterSession(t, []phv.Value{5, 10, 20})
	script := strings.Join([]string{
		"state",
		"next",
		"state",
		"back",
		"slots",
		"watch 0 0 0",
		"break 0 0 0 35",
		"phv 1",
		"goto 0",
		"bogus",
		"goto 99",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := REPL(s, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"3 ticks recorded",
		"stage0:[[5]]",           // state at tick 0
		"stage0:[[15]]",          // state at tick 1
		"hit at tick 2",          // breakpoint
		"in  [10]",               // phv 1 input
		"error: unknown command", // bogus
		"error: debug: tick 99 out of range",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("REPL output missing %q:\n%s", want, text)
		}
	}
}
