// Package debug is the time-travel debugger sketched in §7 of the paper:
// "Bi-directional traveling ... can allow testers to rewind pipeline
// simulation ticks to past pipeline states to trace origins of erroneous
// behavior." A Session records the complete simulation history — per-tick
// state snapshots and per-tick pipeline slot occupancy — and a small REPL
// steps forward and backward through it, sets breakpoints on state values
// and inspects PHVs.
package debug

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"druzhba/internal/core"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
)

// Session is a recorded simulation that can be navigated in both
// directions.
type Session struct {
	pipeline *core.Pipeline
	input    *phv.Trace
	result   *sim.Result
	tick     int
}

// NewSession runs the pipeline over the input trace with full history
// recording and returns a session positioned at tick 0.
func NewSession(p *core.Pipeline, input *phv.Trace) (*Session, error) {
	p.ResetState()
	res, err := sim.RunOpts(p, input, sim.RunOptions{RecordStates: true, RecordSlots: true})
	if err != nil {
		return nil, err
	}
	return &Session{pipeline: p, input: input, result: res}, nil
}

// Ticks reports the total number of recorded ticks.
func (s *Session) Ticks() int { return s.result.Ticks }

// Tick reports the current position.
func (s *Session) Tick() int { return s.tick }

// Goto jumps to an absolute tick.
func (s *Session) Goto(t int) error {
	if t < 0 || t >= s.result.Ticks {
		return fmt.Errorf("debug: tick %d out of range [0,%d)", t, s.result.Ticks)
	}
	s.tick = t
	return nil
}

// Step moves forward one tick.
func (s *Session) Step() error { return s.Goto(s.tick + 1) }

// Back rewinds one tick (the bi-directional travel of §7).
func (s *Session) Back() error { return s.Goto(s.tick - 1) }

// State returns the state snapshot after the current tick.
func (s *Session) State() phv.StateSnapshot {
	return s.result.StateHistory[s.tick]
}

// StateValue reads one state variable at the current tick.
func (s *Session) StateValue(stage, slot, index int) (phv.Value, error) {
	snap := s.State()
	if stage < 0 || stage >= len(snap) {
		return 0, fmt.Errorf("debug: stage %d out of range", stage)
	}
	if slot < 0 || slot >= len(snap[stage]) {
		return 0, fmt.Errorf("debug: stateful ALU %d out of range in stage %d", slot, stage)
	}
	if index < 0 || index >= len(snap[stage][slot]) {
		return 0, fmt.Errorf("debug: state variable %d out of range", index)
	}
	return snap[stage][slot][index], nil
}

// Slots returns the pipeline slot occupancy at the current tick: slot i is
// the PHV that just left stage i-1 and will execute stage i next tick (slot
// 0 holds the newly admitted PHV; the last slot holds a completed PHV).
// Empty slots are nil.
func (s *Session) Slots() [][]phv.Value {
	return s.result.SlotHistory[s.tick]
}

// Watch traces one state variable across every tick.
func (s *Session) Watch(stage, slot, index int) ([]phv.Value, error) {
	if _, err := s.StateValue(stage, slot, index); err != nil {
		return nil, err
	}
	out := make([]phv.Value, s.result.Ticks)
	for t := 0; t < s.result.Ticks; t++ {
		out[t] = s.result.StateHistory[t][stage][slot][index]
	}
	return out, nil
}

// BreakOnState finds the first tick at or after from where the state
// variable equals value, returning the tick or -1.
func (s *Session) BreakOnState(stage, slot, index int, value phv.Value, from int) (int, error) {
	if _, err := s.StateValue(stage, slot, index); err != nil {
		return -1, err
	}
	for t := from; t < s.result.Ticks; t++ {
		if s.result.StateHistory[t][stage][slot][index] == value {
			return t, nil
		}
	}
	return -1, nil
}

// Output returns the simulation's output trace.
func (s *Session) Output() *phv.Trace { return s.result.Output }

// REPL drives a session from a command stream. Commands:
//
//	next | n             advance one tick
//	back | b             rewind one tick
//	goto <t>             jump to tick t
//	state                print the full state snapshot
//	slots                print pipeline slot occupancy
//	watch <st> <alu> <i> print a state variable across all ticks
//	break <st> <alu> <i> <v>  run forward to the first tick where the
//	                     state variable equals v
//	phv <i>              print input/output PHV i
//	quit | q             exit
func REPL(s *Session, r io.Reader, w io.Writer) error {
	fmt.Fprintf(w, "druzhba time-travel debugger: %d ticks recorded, %d PHVs\n", s.Ticks(), s.input.Len())
	prompt := func() {
		fmt.Fprintf(w, "tick %d> ", s.Tick())
	}
	prompt()
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			prompt()
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		var err error
		switch cmd {
		case "quit", "q", "exit":
			return nil
		case "next", "n":
			err = s.Step()
		case "back", "b":
			err = s.Back()
		case "goto":
			err = withInts(args, 1, func(v []int) error { return s.Goto(v[0]) })
		case "state":
			fmt.Fprintln(w, s.State())
		case "slots":
			printSlots(w, s)
		case "watch":
			err = withInts(args, 3, func(v []int) error {
				vals, werr := s.Watch(v[0], v[1], v[2])
				if werr != nil {
					return werr
				}
				printWatch(w, vals)
				return nil
			})
		case "break":
			err = withInts(args, 4, func(v []int) error {
				t, berr := s.BreakOnState(v[0], v[1], v[2], int64(v[3]), s.Tick())
				if berr != nil {
					return berr
				}
				if t < 0 {
					fmt.Fprintln(w, "no tick matches")
					return nil
				}
				if gerr := s.Goto(t); gerr != nil {
					return gerr
				}
				fmt.Fprintf(w, "hit at tick %d\n", t)
				return nil
			})
		case "phv":
			err = withInts(args, 1, func(v []int) error {
				i := v[0]
				if i < 0 || i >= s.input.Len() {
					return fmt.Errorf("PHV %d out of range", i)
				}
				fmt.Fprintf(w, "in  %s\n", s.input.At(i))
				if i < s.Output().Len() {
					fmt.Fprintf(w, "out %s\n", s.Output().At(i))
				}
				return nil
			})
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		prompt()
	}
	return sc.Err()
}

func withInts(args []string, n int, f func([]int) error) error {
	if len(args) != n {
		return fmt.Errorf("want %d argument(s), got %d", n, len(args))
	}
	vals := make([]int, n)
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("bad argument %q", a)
		}
		vals[i] = v
	}
	return f(vals)
}

func printSlots(w io.Writer, s *Session) {
	slots := s.Slots()
	for i, vals := range slots {
		label := fmt.Sprintf("stage %d", i)
		if i == len(slots)-1 {
			label = "done   "
		}
		if vals == nil {
			fmt.Fprintf(w, "  %s: (empty)\n", label)
			continue
		}
		fmt.Fprintf(w, "  %s: %s\n", label, phv.FromValues(vals))
	}
}

func printWatch(w io.Writer, vals []phv.Value) {
	// Compress runs of equal values.
	type run struct {
		from, to int
		v        phv.Value
	}
	var runs []run
	for t, v := range vals {
		if len(runs) > 0 && runs[len(runs)-1].v == v {
			runs[len(runs)-1].to = t
			continue
		}
		runs = append(runs, run{from: t, to: t, v: v})
	}
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].from < runs[j].from })
	for _, r := range runs {
		if r.from == r.to {
			fmt.Fprintf(w, "  tick %d: %d\n", r.from, r.v)
		} else {
			fmt.Fprintf(w, "  tick %d-%d: %d\n", r.from, r.to, r.v)
		}
	}
}
