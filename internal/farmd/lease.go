// lease.go is the worker half of the distributed campaign fabric: the wire
// form of one shard lease and the machinery that executes it.
//
// A coordinator (package fabric, cmd/dcoord) splits a campaign into shard
// leases and POSTs them to dfarmd workers at /v1/leases. A lease carries
// the matrix request, the phase, the job's name and the shard's derived
// traffic seed — everything needed to rebuild the job from the embedded
// benchmark registries and run exactly one shard of it. Because shard
// results are pure functions of that data, the worker's answer is
// byte-identical to what the coordinator's own engine would have produced,
// which is what lets the fabric retry, re-issue and steal leases freely
// without ever changing a report row.
package farmd

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"druzhba/internal/campaign"
	"druzhba/internal/phv"
)

// LeaseProto is the fabric wire-protocol version. A worker rejects leases
// from a coordinator speaking a different version (HTTP 409), so protocol
// skew surfaces as an explicit dispatch failure instead of a silently
// wrong row.
const LeaseProto = 1

// Campaign phases a lease can address. PhaseFuzz doubles as the empty
// default.
const (
	PhaseFuzz   = campaign.ModeFuzz
	PhaseVerify = campaign.ModeVerify
)

// ShardLease is the wire form of one shard execution request: the JSON
// body of POST /v1/leases.
type ShardLease struct {
	// Proto is the fabric protocol version (LeaseProto).
	Proto int `json:"proto"`

	// Campaign identifies the campaign for logs and stats (opaque).
	Campaign string `json:"campaign,omitempty"`

	// Phase selects the matrix expansion the job name addresses: "fuzz"
	// (empty = fuzz) or "verify".
	Phase string `json:"phase,omitempty"`

	// Job is the name of the job within the phase's matrix.
	Job string `json:"job"`

	// Shard is the shard index within the job (informational; the seed
	// addresses the shard's traffic).
	Shard int `json:"shard"`

	// Seed is the shard's derived traffic seed, passed to RunShard
	// verbatim.
	Seed int64 `json:"seed"`

	// N is the shard's packet count.
	N int `json:"n"`

	// Key is the shard's content-addressed cache key in the coordinator's
	// key space ("" = uncacheable). The worker consults and fills its own
	// cache tiers — including the shared remote tier pointing back at the
	// coordinator — under this key.
	Key string `json:"key,omitempty"`

	// Request is the matrix request the job expands from.
	Request *MatrixRequest `json:"request"`

	// VerifyRows carries the verify-phase rows whose counterexample
	// traces seed the fuzz phase in both mode; the worker re-harvests the
	// corpus from them so its job expansion matches the coordinator's.
	VerifyRows []campaign.JobReport `json:"verify_rows,omitempty"`
}

// LeaseJobs expands the lease's matrix for its phase — the worker-side
// mirror of the coordinator's job expansion.
func (r *MatrixRequest) LeaseJobs(phase string, verifyRows []campaign.JobReport) ([]campaign.Job, error) {
	switch phase {
	case PhaseVerify:
		return r.VerifyJobs()
	case PhaseFuzz, "":
		var corpus map[string][][]phv.Value
		if len(verifyRows) > 0 {
			corpus = campaign.HarvestVerifyCorpus(&campaign.Report{Jobs: verifyRows})
		}
		return r.FuzzJobs(corpus)
	default:
		return nil, fmt.Errorf("farmd: unknown lease phase %q", phase)
	}
}

// WireShardResult is the JSON form of one shard result: the response body
// of POST /v1/leases and the entry body of the coordinator's shared cache
// tier (GET/PUT /v1/shards/{key}). It serializes exactly the fields a
// ShardResult's report contribution depends on — VerifyCell.SolveMS is
// excluded at the type level — so a result that crossed the wire merges
// byte-identically to one executed in-process.
type WireShardResult struct {
	Checked  int                   `json:"checked"`
	Ticks    int64                 `json:"ticks"`
	Findings []campaign.Finding    `json:"findings,omitempty"`
	Cells    []campaign.VerifyCell `json:"cells,omitempty"`
	Error    string                `json:"error,omitempty"`
}

// WireResult converts an engine shard result to its wire form.
func WireResult(res *campaign.ShardResult) WireShardResult {
	w := WireShardResult{Checked: res.Checked, Ticks: res.Ticks, Findings: res.Findings, Cells: res.Cells}
	if res.Err != nil {
		w.Error = res.Err.Error()
	}
	return w
}

// Result converts a wire shard result back to the engine form.
func (w *WireShardResult) Result() *campaign.ShardResult {
	res := &campaign.ShardResult{Checked: w.Checked, Ticks: w.Ticks, Findings: w.Findings, Cells: w.Cells}
	if w.Error != "" {
		res.Err = fmt.Errorf("%s", w.Error)
	}
	return res
}

// instanceCache is the worker's bounded LRU of built campaign targets,
// keyed by (request, phase, job). Leases of one campaign arrive as a
// stream of shards over the same few jobs, so caching the built instance
// (compiled pipeline, interned dRMT layout, proof tables) amortizes the
// build across every shard the worker is leased; runners are additionally
// pooled per instance because the engine's own workers reuse runners
// across shards by design.
type instanceCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *instEntry
	items map[string]*list.Element
}

type instEntry struct {
	key  string
	once sync.Once
	job  campaign.Job
	inst campaign.Instance
	err  error

	mu      sync.Mutex
	runners []campaign.Runner // free list of idle runners
}

func newInstanceCache(capacity int) *instanceCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &instanceCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// leaseKey derives the instance-cache key from everything the job
// expansion depends on.
func leaseKey(lease *ShardLease) (string, error) {
	req, err := json.Marshal(lease.Request)
	if err != nil {
		return "", err
	}
	rows, err := json.Marshal(lease.VerifyRows)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, part := range [][]byte{[]byte(lease.Phase), []byte(lease.Job), req, rows} {
		fmt.Fprintf(h, "%d\x00", len(part))
		h.Write(part)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// get returns the built (job, instance) for a lease, building it at most
// once per cache residency. Build errors are cached too: a coordinator
// retrying a lease the worker cannot build gets the same answer without
// paying the build again.
func (c *instanceCache) get(lease *ShardLease) (*instEntry, error) {
	key, err := leaseKey(lease)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		el = c.order.PushFront(&instEntry{key: key})
		c.items[key] = el
		for len(c.items) > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*instEntry).key)
		}
	} else {
		c.order.MoveToFront(el)
	}
	ent := el.Value.(*instEntry)
	c.mu.Unlock()

	ent.once.Do(func() {
		jobs, err := lease.Request.LeaseJobs(lease.Phase, lease.VerifyRows)
		if err != nil {
			ent.err = err
			return
		}
		for i := range jobs {
			if jobs[i].Name == lease.Job {
				ent.job = jobs[i]
				ent.inst, ent.err = jobs[i].Target.Build()
				return
			}
		}
		ent.err = fmt.Errorf("farmd: lease names job %q, not in the %s matrix of this request", lease.Job, lease.Phase)
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return ent, nil
}

// runner pops an idle runner or builds a fresh one.
func (e *instEntry) runner() (campaign.Runner, error) {
	e.mu.Lock()
	if n := len(e.runners); n > 0 {
		r := e.runners[n-1]
		e.runners = e.runners[:n-1]
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()
	return e.inst.NewRunner()
}

// release returns a runner to the free list. Only runners whose last shard
// completed cleanly are reused; a runner abandoned mid-shard (cancelled
// proof, failed stream) is dropped so its half-mutated state can never
// leak into another lease.
func (e *instEntry) release(r campaign.Runner) {
	e.mu.Lock()
	if len(e.runners) < 8 {
		e.runners = append(e.runners, r)
	}
	e.mu.Unlock()
}
