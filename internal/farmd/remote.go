package farmd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"druzhba/internal/campaign"
)

// RemoteCache is a campaign.ShardCache client against a fabric
// coordinator's shared shard store (GET/PUT /v1/shards/{key}). Stacked
// under a worker's local tiers it turns the fleet's shard work into a
// common pool: a shard any worker ever executed — under the
// coordinator-issued key, so key spaces agree across binaries — is a hit
// for every other worker, and for the coordinator's own engine after a
// worker dies.
//
// All failures (network, non-2xx, undecodable body) degrade to a miss or a
// dropped write: the remote tier can only save work, never lose or corrupt
// a result, so chaos on the cache path is invisible in reports.
type RemoteCache struct {
	base   string
	token  string
	client *http.Client
}

// NewRemoteCache returns a remote cache against the coordinator at
// baseURL, authenticating writes with token (empty = no auth). client nil
// means a dedicated client with a short timeout — the remote tier is an
// optimization and must never wedge shard execution behind a dead
// coordinator.
func NewRemoteCache(baseURL, token string, client *http.Client) *RemoteCache {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &RemoteCache{base: strings.TrimSuffix(baseURL, "/"), token: token, client: client}
}

func (c *RemoteCache) url(key string) string { return c.base + "/v1/shards/" + key }

func (c *RemoteCache) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// Get implements campaign.ShardCache.
func (c *RemoteCache) Get(key string) (*campaign.ShardResult, bool) {
	req, err := http.NewRequest(http.MethodGet, c.url(key), nil)
	if err != nil {
		return nil, false
	}
	c.authorize(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var wire WireShardResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&wire); err != nil || wire.Error != "" {
		return nil, false
	}
	return wire.Result(), true
}

// Put implements campaign.ShardCache; results with errors are never
// shipped, matching the local tiers.
func (c *RemoteCache) Put(key string, res *campaign.ShardResult) {
	if res == nil || res.Err != nil {
		return
	}
	body, err := json.Marshal(WireResult(res))
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.url(key), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
	resp.Body.Close()
}
