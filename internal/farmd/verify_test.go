package farmd

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"druzhba/internal/campaign"
)

// TestRunMatrixBothMode drives the two-phase orchestration end to end on a
// real benchmark: the verify rows stream first (matrix order), the fuzz
// rows follow, and the merged summary aggregates both phases.
func TestRunMatrixBothMode(t *testing.T) {
	req := &MatrixRequest{
		Run:     "sampling",
		Mode:    ModeBoth,
		Packets: 256, ShardSize: 64,
		VerifyBits: []int{3}, VerifySteps: []int{2},
	}
	rep, err := RunMatrix(context.Background(), req, campaign.Options{Workers: 2, ShardSize: 64, Cache: NewMemCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("both-mode run on a correct benchmark failed:\n%s", rep.Text(false))
	}
	// 1 verify job (one benchmark × one seed), then 4 fuzz jobs (the four
	// rmt optimization levels).
	if len(rep.Jobs) != 5 {
		t.Fatalf("got %d rows, want 5 (1 verify + 4 fuzz)", len(rep.Jobs))
	}
	if rep.Jobs[0].Mode != campaign.ModeVerify {
		t.Fatalf("first row mode %q, want verify rows first", rep.Jobs[0].Mode)
	}
	if len(rep.Jobs[0].Cells) == 0 || rep.Jobs[0].Cells[0].Verdict != campaign.VerdictProven {
		t.Fatalf("verify row did not prove: %+v", rep.Jobs[0])
	}
	for _, j := range rep.Jobs[1:] {
		if j.Mode != campaign.ModeFuzz {
			t.Fatalf("row %q mode %q, want fuzz after the verify block", j.Name, j.Mode)
		}
	}
	if rep.Cache == nil || rep.Timing == nil {
		t.Fatal("merged report lost cache or timing metadata")
	}
	var checked int64
	for _, j := range rep.Jobs {
		checked += int64(j.Checked)
	}
	if rep.TotalChecked != checked {
		t.Fatalf("TotalChecked %d, want the row sum %d", rep.TotalChecked, checked)
	}
}

// TestMatrixRequestModeValidation pins the mode axis's error surface:
// requests that mix verify mode with fuzz-only knobs, unknown modes, and
// verify on an architecture without a prover are rejected before any job
// runs.
func TestMatrixRequestModeValidation(t *testing.T) {
	cases := []struct {
		name string
		req  MatrixRequest
		want string // substring of the error, "" = valid
	}{
		{"default is fuzz", MatrixRequest{Run: "sampling"}, ""},
		{"explicit verify", MatrixRequest{Run: "sampling", Mode: campaign.ModeVerify}, ""},
		{"both", MatrixRequest{Run: "sampling", Mode: ModeBoth}, ""},
		{"unknown mode", MatrixRequest{Run: "sampling", Mode: "prove"}, `mode "prove"`},
		{"verify with levels", MatrixRequest{Run: "sampling", Mode: campaign.ModeVerify, Levels: []string{"O3"}}, "fuzz jobs only"},
		{"verify with traffic", MatrixRequest{Run: "sampling", Mode: campaign.ModeVerify, Traffic: []string{"boundary"}}, "fuzz jobs only"},
		{"verify with procs", MatrixRequest{Run: "sampling", Mode: campaign.ModeVerify, Procs: []int{2}}, "fuzz jobs only"},
		{"verify on drmt", MatrixRequest{Arch: "drmt", Run: "sampling", Mode: campaign.ModeVerify}, "rmt architecture only"},
		{"verify matches nothing", MatrixRequest{Run: "no-such-benchmark", Mode: campaign.ModeVerify}, "matches no rmt benchmark"},
		{"bad grid", MatrixRequest{Run: "sampling", Mode: campaign.ModeVerify, VerifyBits: []int{99}}, "width 99"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDirCacheEviction fills a byte-capped DirCache past its cap and checks
// the LRU contract: oldest entries lose their files, recently used ones
// survive, the tracked size stays under the cap, and every survivor still
// round-trips — eviction bounds the cache, it never corrupts it.
func TestDirCacheEviction(t *testing.T) {
	// All entries serialize identically sized, so the cap arithmetic is
	// exact: room for three entries plus slack, never four.
	entry := func(i int) *campaign.ShardResult { return &campaign.ShardResult{Checked: i, Ticks: int64(i)} }
	probe, err := json.Marshal(diskEntry{Key: "k0", Checked: 0, Ticks: 0})
	if err != nil {
		t.Fatal(err)
	}
	unit := int64(len(probe))
	c, err := NewDirCacheLimit(t.TempDir(), 3*unit+unit/2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	for i, k := range keys {
		c.Put(k, entry(i))
	}
	if c.Len() != 3 || c.Size() > 3*unit+unit/2 {
		t.Fatalf("len %d size %d after overfill, want 3 entries under the cap", c.Len(), c.Size())
	}
	for _, k := range keys[:2] {
		if _, ok := c.Get(k); ok {
			t.Fatalf("oldest entry %s survived eviction", k)
		}
		if _, err := os.Stat(c.Path(k)); !os.IsNotExist(err) {
			t.Fatalf("evicted entry %s left its file behind", k)
		}
	}
	for i, k := range keys[2:] {
		res, ok := c.Get(k)
		if !ok {
			t.Fatalf("recent entry %s evicted", k)
		}
		if res.Checked != i+2 {
			t.Fatalf("entry %s corrupted by eviction: %+v", k, res)
		}
	}

	// Get refreshes recency: touch the now-oldest survivor, overflow again,
	// and the untouched middle entry goes instead.
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 missing before refresh")
	}
	c.Put("k5", entry(5))
	if _, ok := c.Get("k3"); ok {
		t.Fatal("k3 survived despite being least recently used")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("recently touched k2 was evicted")
	}
}

// TestDirCacheSingleEntrySurvivesCap: the most recent entry is never
// evicted, even when it alone exceeds the cap — a too-small cap degrades to
// a one-entry cache instead of an always-empty one.
func TestDirCacheSingleEntrySurvivesCap(t *testing.T) {
	c, err := NewDirCacheLimit(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("only", &campaign.ShardResult{Checked: 9})
	if _, ok := c.Get("only"); !ok {
		t.Fatal("sole entry evicted under a cap smaller than one entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

// TestDirCacheScanSeedsRecencyFromMtimes: reopening a bounded cache over an
// existing directory rebuilds the accounting from the files, ordered by
// modification time, so eviction after a restart still removes the oldest
// entries first.
func TestDirCacheScanSeedsRecencyFromMtimes(t *testing.T) {
	dir := t.TempDir()
	warm, err := NewDirCache(dir) // unbounded writer: no eviction while seeding
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a0", "b1", "c2", "d3"}
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		warm.Put(k, &campaign.ShardResult{Checked: i})
		// Distinct mtimes in key order, oldest first.
		if err := os.Chtimes(warm.Path(k), base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error { //nolint:errcheck // test walk
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})

	unit := total / int64(len(keys))
	c, err := NewDirCacheLimit(dir, total-unit/2) // forces exactly one eviction on open
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d after reopen past cap, want 3", c.Len())
	}
	if _, ok := c.Get("a0"); ok {
		t.Fatal("oldest-mtime entry survived the reopen eviction")
	}
	for _, k := range keys[1:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("newer entry %s evicted on reopen", k)
		}
	}
}

// TestDirCacheVerifyCellsRoundtrip: verify shard results persist their full
// deterministic cell payload — verdict, SAT stats, counterexample trace —
// while solve wall time never reaches disk.
func TestDirCacheVerifyCellsRoundtrip(t *testing.T) {
	c, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := &campaign.ShardResult{
		Checked: 1,
		Cells: []campaign.VerifyCell{{
			Bits: 5, Steps: 2,
			Verdict: campaign.VerdictCounterexample,
			Vars:    474, Clauses: 1507, Conflicts: 206,
			Trace:    [][]int64{{7, 3, 1}, {7, 3, 1}},
			FailStep: 1,
			SolveMS:  123.456,
		}},
		Findings: []campaign.Finding{{Index: 0, Input: "trace", Got: "refuted", Want: "proven"}},
	}
	c.Put("cellkey", in)
	out, ok := c.Get("cellkey")
	if !ok {
		t.Fatal("verify result missing after Put")
	}
	if len(out.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(out.Cells))
	}
	cell := out.Cells[0]
	if cell.SolveMS != 0 {
		t.Fatalf("solve wall time leaked to disk: %v", cell.SolveMS)
	}
	want := in.Cells[0]
	want.SolveMS = 0
	if cell.Bits != want.Bits || cell.Steps != want.Steps || cell.Verdict != want.Verdict ||
		cell.Vars != want.Vars || cell.Clauses != want.Clauses || cell.Conflicts != want.Conflicts ||
		cell.FailStep != want.FailStep || len(cell.Trace) != 2 ||
		cell.Trace[0][0] != 7 || cell.Trace[1][2] != 1 {
		t.Fatalf("cell roundtrip mismatch:\n got %+v\nwant %+v", cell, want)
	}
	if len(out.Findings) != 1 || out.Findings[0] != in.Findings[0] {
		t.Fatalf("findings roundtrip mismatch: %+v", out.Findings)
	}
}
