package farmd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/drmt"
	"druzhba/internal/spec"
)

// rowWriteTimeout bounds each NDJSON row write: a client that stalls its
// stream longer than this has its campaign cancelled rather than wedging
// the engine's workers and holding an execution slot.
const rowWriteTimeout = 30 * time.Second

// Config configures a campaign server.
type Config struct {
	// Cache is the shard-result store shared by every campaign the
	// server runs (nil = no caching).
	Cache campaign.ShardCache

	// Workers is each campaign's worker pool size (0 = GOMAXPROCS).
	Workers int

	// MaxConcurrent bounds how many campaigns execute at once (0 = 2);
	// excess submissions queue until a slot frees or the client leaves.
	MaxConcurrent int

	// JobTimeout is the default per-job wall-clock budget applied when a
	// request does not set one (0 = unbounded).
	JobTimeout time.Duration
}

// Stats is the server's cumulative serving state, exposed on /v1/stats.
type Stats struct {
	Campaigns   int64 `json:"campaigns"`    // campaigns completed
	Jobs        int64 `json:"jobs"`         // job rows streamed
	CacheHits   int64 `json:"cache_hits"`   // shards replayed from cache
	CacheMisses int64 `json:"cache_misses"` // shards executed with caching on
}

// Server is the dfarmd HTTP service: POST /v1/campaigns streams campaign
// rows as NDJSON, GET /v1/benchmarks lists the embedded benchmark
// registries, GET /v1/stats reports cumulative serving counters and GET
// /healthz answers liveness probes.
type Server struct {
	cfg   Config
	sem   chan struct{}
	mux   *http.ServeMux
	stats Stats // updated atomically
}

// NewServer builds a campaign server over cfg.
func NewServer(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns a snapshot of the cumulative serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Campaigns:   atomic.LoadInt64(&s.stats.Campaigns),
		Jobs:        atomic.LoadInt64(&s.stats.Jobs),
		CacheHits:   atomic.LoadInt64(&s.stats.CacheHits),
		CacheMisses: atomic.LoadInt64(&s.stats.CacheMisses),
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck // terminal write
}

// handleCampaigns expands the submitted matrix, runs it on the campaign
// engine and streams rows. Job-matrix errors surface as HTTP 4xx before
// the stream opens; once the first byte is written the stream terminates
// with either a summary row or an error row.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	// A matrix request is a few KB of JSON; bound the body so one
	// oversized submission cannot exhaust the daemon's memory.
	var req MatrixRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad matrix request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Queue for an execution slot; a client that disconnects while
	// queued never starts its campaign.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		return
	}

	timeout := req.JobTimeout()
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}

	// The stream owns the connection from here on: rows are flushed as
	// jobs complete, and a client disconnect cancels the campaign via
	// the request context.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	writeRow := func(row Row) {
		// A bounded write deadline per row: a client that stops reading
		// its stream fails the write instead of blocking the emitter —
		// and with it every campaign worker — indefinitely. Best effort:
		// an unsupported controller falls back to unbounded writes.
		rc.SetWriteDeadline(time.Now().Add(rowWriteTimeout)) //nolint:errcheck // best effort
		if err := enc.Encode(row); err != nil {
			cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	opts := campaign.Options{
		Workers:            s.cfg.Workers,
		ShardSize:          req.ShardSize,
		MaxCounterexamples: req.MaxCounterexamples,
		FailFast:           req.FailFast,
		JobTimeout:         timeout,
		Cache:              s.cfg.Cache,
		OnJobReport: func(jr campaign.JobReport) {
			atomic.AddInt64(&s.stats.Jobs, 1)
			writeRow(Row{Job: &jr})
		},
	}
	rep, runErr := RunMatrix(ctx, &req, opts)
	if rep == nil {
		writeRow(Row{Error: runErr.Error()})
		return
	}
	atomic.AddInt64(&s.stats.Campaigns, 1)
	if rep.Cache != nil {
		atomic.AddInt64(&s.stats.CacheHits, rep.Cache.Hits)
		atomic.AddInt64(&s.stats.CacheMisses, rep.Cache.Misses)
	}
	writeRow(Row{Summary: &Summary{
		Passed:       rep.Passed,
		Jobs:         len(rep.Jobs),
		TotalChecked: rep.TotalChecked,
		StoppedEarly: rep.StoppedEarly,
		Cache:        rep.Cache,
		Timing:       rep.Timing,
	}})
}

// handleBenchmarks lists the embedded benchmark registries by architecture.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{ //nolint:errcheck // terminal write
		"rmt":  spec.Names(),
		"drmt": drmt.BenchmarkNames(),
	})
}

// handleStats reports the cumulative serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats()) //nolint:errcheck // terminal write
}

// Serve runs a campaign server on addr until ctx is cancelled, then shuts
// down gracefully (in-flight streams get a short drain window).
func Serve(ctx context.Context, addr string, cfg Config) error {
	srv := &http.Server{Addr: addr, Handler: NewServer(cfg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
