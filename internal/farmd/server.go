package farmd

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/drmt"
	"druzhba/internal/obs"
	"druzhba/internal/spec"
)

// defaultRowWriteTimeout bounds each NDJSON row write when Config does not
// set one: a client that stalls its stream longer than this has its
// campaign cancelled rather than wedging the engine's workers and holding
// an execution slot.
const defaultRowWriteTimeout = 30 * time.Second

// Config configures a campaign server.
type Config struct {
	// Cache is the shard-result store shared by every campaign the
	// server runs (nil = no caching).
	Cache campaign.ShardCache

	// Workers is each campaign's worker pool size (0 = GOMAXPROCS).
	Workers int

	// BatchSize is the default PHV-batch size applied when a request does
	// not set one (0 = streaming). An execution knob only: results and
	// cache keys are byte-identical for every value.
	BatchSize int

	// MaxConcurrent bounds how many campaigns execute at once (0 = 2);
	// excess submissions queue until a slot frees or the client leaves.
	MaxConcurrent int

	// JobTimeout is the default per-job wall-clock budget applied when a
	// request does not set one (0 = unbounded).
	JobTimeout time.Duration

	// RowWriteTimeout bounds each NDJSON row write; a client that stalls
	// its stream longer than this has its campaign cancelled. 0 means 30s;
	// negative disables the bound.
	RowWriteTimeout time.Duration

	// AuthToken, when non-empty, is the shared fleet secret: every
	// mutating endpoint (campaign submission, shard leases) requires
	// "Authorization: Bearer <AuthToken>". Read-only probes (/healthz,
	// /v1/benchmarks, /v1/stats) stay open for load balancers and
	// monitoring.
	AuthToken string

	// Metrics is the registry GET /metrics serves; the server registers
	// its lease and campaign instruments on it (nil = a fresh private
	// registry, so /metrics always works). Observability only: metrics
	// never feed results.
	Metrics *obs.Registry

	// Trace journals campaign/lease lifecycle events as NDJSON (nil =
	// no tracing).
	Trace *obs.Tracer

	// Now is the server's clock seam for lease-duration observations;
	// nil means time.Now. Timing read through it only ever feeds
	// metrics, never results.
	Now func() time.Time

	// RemoteCounts, when non-nil, reports the remote cache tier's
	// cumulative hit/miss counts for /v1/stats (dfarmd wires the
	// instrumented remote tier's Counts here).
	RemoteCounts func() (hits, misses int64)
}

// rowTimeout resolves the configured row-write deadline.
func (c *Config) rowTimeout() time.Duration {
	switch {
	case c.RowWriteTimeout == 0:
		return defaultRowWriteTimeout
	case c.RowWriteTimeout < 0:
		return 0
	default:
		return c.RowWriteTimeout
	}
}

// Stats is the server's cumulative serving state, exposed on /v1/stats.
// LeaseErrors and the remote-cache pair are additive extensions — existing
// consumers of the original counters are unaffected.
type Stats struct {
	Campaigns   int64 `json:"campaigns"`    // campaigns completed
	Jobs        int64 `json:"jobs"`         // job rows streamed
	Leases      int64 `json:"leases"`       // shard leases executed
	CacheHits   int64 `json:"cache_hits"`   // shards replayed from cache
	CacheMisses int64 `json:"cache_misses"` // shards executed with caching on

	LeaseErrors  int64 `json:"lease_errors"`        // leases whose shard errored
	RemoteHits   int64 `json:"remote_cache_hits"`   // remote-tier cache hits
	RemoteMisses int64 `json:"remote_cache_misses"` // remote-tier cache misses
}

// Server is the dfarmd HTTP service: POST /v1/campaigns streams campaign
// rows as NDJSON, POST /v1/leases executes one shard lease for a fabric
// coordinator, GET /v1/benchmarks lists the embedded benchmark registries,
// GET /v1/stats reports cumulative serving counters and GET /healthz
// answers liveness probes.
type Server struct {
	cfg       Config
	sem       chan struct{}
	leaseSem  chan struct{}
	mux       *http.ServeMux
	instances *instanceCache
	stats     Stats // updated atomically

	// Observability: cm instruments engine runs; the rest are the
	// server's own lease/campaign counters on cfg.Metrics.
	cm                    *campaign.Metrics
	mCampaigns, mJobs     *obs.Counter
	mLeases, mLeaseErrors *obs.Counter
	mLeaseSeconds         *obs.Histogram
}

// NewServer builds a campaign server over cfg.
func NewServer(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	leaseSlots := cfg.Workers
	if leaseSlots <= 0 {
		leaseSlots = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now //dvet:walltime-ok the one approved default for the server's clock seam
	}
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		leaseSem:  make(chan struct{}, leaseSlots),
		mux:       http.NewServeMux(),
		instances: newInstanceCache(16),

		cm:            campaign.NewMetrics(cfg.Metrics),
		mCampaigns:    cfg.Metrics.Counter("druzhba_farmd_campaigns_total", "campaigns run to completion"),
		mJobs:         cfg.Metrics.Counter("druzhba_farmd_jobs_total", "job rows streamed"),
		mLeases:       cfg.Metrics.Counter("druzhba_farmd_leases_total", "shard leases executed"),
		mLeaseErrors:  cfg.Metrics.Counter("druzhba_farmd_lease_errors_total", "leases whose shard errored"),
		mLeaseSeconds: cfg.Metrics.Histogram("druzhba_farmd_lease_seconds", "shard lease service time, cache probe included", nil),
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.auth(s.handleCampaigns))
	s.mux.HandleFunc("POST /v1/leases", s.auth(s.handleLease))
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// auth gates a mutating handler behind the shared fleet secret; with no
// token configured it is a no-op.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !CheckBearer(r, s.cfg.AuthToken) {
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next(w, r)
	}
}

// CheckBearer reports whether the request carries "Authorization: Bearer
// <token>". An empty token disables the check. The comparison is constant
// time, so a fleet secret cannot be recovered byte-by-byte through timing.
func CheckBearer(r *http.Request, token string) bool {
	if token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// Stats returns a snapshot of the cumulative serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Campaigns:   atomic.LoadInt64(&s.stats.Campaigns),
		Jobs:        atomic.LoadInt64(&s.stats.Jobs),
		Leases:      atomic.LoadInt64(&s.stats.Leases),
		CacheHits:   atomic.LoadInt64(&s.stats.CacheHits),
		CacheMisses: atomic.LoadInt64(&s.stats.CacheMisses),
		LeaseErrors: atomic.LoadInt64(&s.stats.LeaseErrors),
	}
	if s.cfg.RemoteCounts != nil {
		st.RemoteHits, st.RemoteMisses = s.cfg.RemoteCounts()
	}
	return st
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck // terminal write
}

// handleCampaigns expands the submitted matrix, runs it on the campaign
// engine and streams rows. Job-matrix errors surface as HTTP 4xx before
// the stream opens; once the first byte is written the stream terminates
// with either a summary row or an error row.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	// A matrix request is a few KB of JSON; bound the body so one
	// oversized submission cannot exhaust the daemon's memory.
	var req MatrixRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad matrix request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Queue for an execution slot; a client that disconnects while
	// queued never starts its campaign.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		return
	}

	timeout := req.JobTimeout()
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}

	// The stream owns the connection from here on: rows are flushed as
	// jobs complete, and a client disconnect cancels the campaign via
	// the request context.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	rowTimeout := s.cfg.rowTimeout()
	writeRow := func(row Row) {
		// A bounded write deadline per row: a client that stops reading
		// its stream fails the write instead of blocking the emitter —
		// and with it every campaign worker — indefinitely. Best effort:
		// an unsupported controller falls back to unbounded writes.
		if rowTimeout > 0 {
			//dvet:walltime-ok I/O write deadline for a stalled client, never report content
			rc.SetWriteDeadline(time.Now().Add(rowTimeout)) //nolint:errcheck // best effort
		}
		if err := enc.Encode(row); err != nil {
			cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	batch := req.Batch
	if batch <= 0 {
		batch = s.cfg.BatchSize
	}
	opts := campaign.Options{
		Workers:            s.cfg.Workers,
		ShardSize:          req.ShardSize,
		BatchSize:          batch,
		MaxCounterexamples: req.MaxCounterexamples,
		FailFast:           req.FailFast,
		JobTimeout:         timeout,
		Cache:              s.cfg.Cache,
		Metrics:            s.cm,
		Trace:              s.cfg.Trace,
		Now:                s.cfg.Now,
		OnJobReport: func(jr campaign.JobReport) {
			atomic.AddInt64(&s.stats.Jobs, 1)
			s.mJobs.Inc()
			writeRow(Row{Job: &jr})
		},
	}
	rep, runErr := RunMatrix(ctx, &req, opts)
	if rep == nil {
		writeRow(Row{Error: runErr.Error()})
		return
	}
	atomic.AddInt64(&s.stats.Campaigns, 1)
	s.mCampaigns.Inc()
	if rep.Cache != nil {
		atomic.AddInt64(&s.stats.CacheHits, rep.Cache.Hits)
		atomic.AddInt64(&s.stats.CacheMisses, rep.Cache.Misses)
	}
	writeRow(Row{Summary: &Summary{
		Passed:       rep.Passed,
		Jobs:         len(rep.Jobs),
		TotalChecked: rep.TotalChecked,
		StoppedEarly: rep.StoppedEarly,
		Cache:        rep.Cache,
		Timing:       rep.Timing,
	}})
}

// handleLease executes one shard lease and answers with its wire result.
// The status code is the dispatch protocol: 200 carries a result (possibly
// an application failure in its Error field — the shard ran and failed
// deterministically), 4xx means the lease itself is unusable on this
// worker (bad body, protocol skew, job not in the matrix), and a transport
// failure with no status at all is what the coordinator reads as worker
// death. Results are cached under the coordinator-issued key — the worker
// never recomputes keys, because cache keys are salted per binary and a
// worker-computed key would land in a different key space than the
// coordinator's.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var lease ShardLease
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&lease); err != nil {
		httpError(w, http.StatusBadRequest, "bad shard lease: %v", err)
		return
	}
	if lease.Proto != LeaseProto {
		httpError(w, http.StatusConflict, "lease protocol %d, worker speaks %d", lease.Proto, LeaseProto)
		return
	}
	if lease.Request == nil {
		httpError(w, http.StatusBadRequest, "lease has no matrix request")
		return
	}
	if lease.N < 1 {
		httpError(w, http.StatusBadRequest, "lease asks for %d packets", lease.N)
		return
	}

	// Bound concurrent lease execution by the worker pool size so a
	// coordinator fanning out cannot oversubscribe the host.
	select {
	case s.leaseSem <- struct{}{}:
		defer func() { <-s.leaseSem }()
	case <-r.Context().Done():
		return
	}

	start := s.cfg.Now()
	writeResult := func(res *campaign.ShardResult) {
		atomic.AddInt64(&s.stats.Leases, 1)
		s.mLeases.Inc()
		durSec := s.cfg.Now().Sub(start).Seconds()
		s.mLeaseSeconds.Observe(durSec)
		errored := res != nil && res.Err != nil
		if errored {
			atomic.AddInt64(&s.stats.LeaseErrors, 1)
			s.mLeaseErrors.Inc()
		}
		s.cfg.Trace.Event("lease", "served",
			obs.KV{K: "key", V: lease.Key},
			obs.KV{K: "n", V: lease.N},
			obs.KV{K: "errored", V: errored},
			obs.KV{K: "dur_us", V: int64(durSec * 1e6)})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(WireResult(res)) //nolint:errcheck // terminal write
	}

	// The local cache stack (memory, disk, and — when the daemon points
	// back at a coordinator — the shared remote tier) may already hold
	// this shard from an earlier lease or a previous campaign.
	if s.cfg.Cache != nil && lease.Key != "" {
		if res, ok := s.cfg.Cache.Get(lease.Key); ok {
			atomic.AddInt64(&s.stats.CacheHits, 1)
			writeResult(res)
			return
		}
		atomic.AddInt64(&s.stats.CacheMisses, 1)
	}

	ent, err := s.instances.get(&lease)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	runner, err := ent.runner()
	if err != nil {
		writeResult(&campaign.ShardResult{Err: err})
		return
	}
	// Apply the batch strategy per lease. The lease key hashes the matrix
	// request (Batch included), so pooled runners for one key have all seen
	// the same batch size; results are byte-identical either way.
	if bs, ok := runner.(campaign.BatchSizer); ok {
		batch := lease.Request.Batch
		if batch <= 0 {
			batch = s.cfg.BatchSize
		}
		if batch > 0 {
			bs.SetBatchSize(batch)
		}
	}
	var res campaign.ShardResult
	if cr, ok := runner.(campaign.ContextRunner); ok {
		res = cr.RunShardContext(r.Context(), lease.Seed, lease.N)
	} else {
		res = runner.RunShard(lease.Seed, lease.N)
	}
	if res.Err == nil {
		// Reuse only runners whose shard completed cleanly; a runner that
		// just errored (or was cancelled mid-proof) is dropped so its
		// state cannot leak into the next lease.
		ent.release(runner)
		if s.cfg.Cache != nil && lease.Key != "" {
			s.cfg.Cache.Put(lease.Key, &res)
		}
	}
	if r.Context().Err() != nil {
		// The coordinator gave up on this lease (deadline, campaign
		// abort); the connection is dead, so skip the write the
		// dispatcher will never read. A cancelled context-aware run
		// carried ctx.Err() as its result error, so it was not cached
		// above either.
		return
	}
	writeResult(&res)
}

// handleBenchmarks lists the embedded benchmark registries by architecture.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{ //nolint:errcheck // terminal write
		"rmt":  spec.Names(),
		"drmt": drmt.BenchmarkNames(),
	})
}

// handleStats reports the cumulative serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats()) //nolint:errcheck // terminal write
}

// Serve runs a campaign server on addr until ctx is cancelled, then shuts
// down gracefully: in-flight streams get drain to finish, and the disk
// cache tier (when the cache implements Flusher) is flushed before the
// process exits. drain <= 0 means 5s.
func Serve(ctx context.Context, addr string, cfg Config, drain time.Duration) error {
	var flush func() error
	if f, ok := cfg.Cache.(Flusher); ok {
		flush = f.Flush
	}
	return ListenAndServe(ctx, addr, NewServer(cfg), drain, flush)
}

// ListenAndServe runs h on addr until ctx is cancelled — the caller wires
// ctx to SIGINT/SIGTERM — then shuts down gracefully: the listener closes
// immediately (no new campaigns), in-flight streams get drain to finish
// (then the server hard-closes), and flush, when non-nil, runs before
// return so buffered state (the disk cache tier) survives the restart.
// Both dfarmd and dcoord serve through this helper so the fleet shares one
// shutdown discipline.
func ListenAndServe(ctx context.Context, addr string, h http.Handler, drain time.Duration, flush func() error) error {
	if drain <= 0 {
		drain = 5 * time.Second
	}
	srv := &http.Server{Addr: addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	var err error
	select {
	case err = <-errCh:
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		if serr := srv.Shutdown(shutdownCtx); serr != nil {
			srv.Close()
		}
		cancel()
		if err = <-errCh; errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
	}
	if flush != nil {
		if ferr := flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
