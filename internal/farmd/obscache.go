package farmd

import (
	"druzhba/internal/campaign"
	"druzhba/internal/obs"
)

// Cache tier names used as the "tier" label on the shared cache metric
// families.
const (
	TierMem    = "mem"
	TierDisk   = "disk"
	TierRemote = "remote"
)

// InstrumentedCache wraps a campaign.ShardCache with tier-labeled hit,
// miss and put counters on the shared cache metric families
// (druzhba_cache_gets_total{tier,outcome}, druzhba_cache_puts_total{tier}).
// Wrapping a MemCache or DirCache also wires its eviction counters
// (druzhba_cache_evictions_total{tier}, druzhba_cache_evicted_bytes_total).
//
// Instrumentation is observability only: the wrapper forwards results
// unchanged, so cached replays stay byte-identical.
type InstrumentedCache struct {
	inner              campaign.ShardCache
	hits, misses, puts *obs.Counter
}

// InstrumentCache registers the shared cache families on reg (idempotent
// across tiers) and returns inner wrapped with the given tier's series.
// A nil inner or registry returns nil — callers only wrap live tiers.
func InstrumentCache(inner campaign.ShardCache, tier string, reg *obs.Registry) *InstrumentedCache {
	if inner == nil || reg == nil {
		return nil
	}
	gets := reg.CounterVec("druzhba_cache_gets_total", "shard cache lookups by tier and outcome", "tier", "outcome")
	puts := reg.CounterVec("druzhba_cache_puts_total", "shard cache writes by tier", "tier")
	evictions := reg.CounterVec("druzhba_cache_evictions_total", "shard cache entries evicted by tier", "tier")
	evictedBytes := reg.CounterVec("druzhba_cache_evicted_bytes_total", "shard cache bytes evicted by tier", "tier")
	switch t := inner.(type) {
	case *MemCache:
		t.SetEvictionCounter(evictions.With(tier))
	case *DirCache:
		t.SetEvictionCounters(evictions.With(tier), evictedBytes.With(tier))
	}
	return &InstrumentedCache{
		inner:  inner,
		hits:   gets.With(tier, "hit"),
		misses: gets.With(tier, "miss"),
		puts:   puts.With(tier),
	}
}

// Get implements campaign.ShardCache.
func (c *InstrumentedCache) Get(key string) (*campaign.ShardResult, bool) {
	res, ok := c.inner.Get(key)
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return res, ok
}

// Put implements campaign.ShardCache.
func (c *InstrumentedCache) Put(key string, res *campaign.ShardResult) {
	c.puts.Inc()
	c.inner.Put(key, res)
}

// Flush implements Flusher, forwarding to the inner tier when it buffers
// state.
func (c *InstrumentedCache) Flush() error {
	if f, ok := c.inner.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Counts returns the wrapper's cumulative hit and miss counts; dfarmd
// feeds the remote tier's pair into /v1/stats.
func (c *InstrumentedCache) Counts() (hits, misses int64) {
	return int64(c.hits.Value()), int64(c.misses.Value())
}
