package farmd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"druzhba/internal/obs"
)

// TestServerMetricsAndStats pins the worker's observability surface:
// GET /metrics serves the farmd serving counters and tier-labeled cache
// families, and /v1/stats carries the additive lease_errors and
// remote-cache fields without disturbing the existing keys.
func TestServerMetricsAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	cache := InstrumentCache(NewMemCache(0), TierMem, reg)
	s := NewServer(Config{
		Cache:        cache,
		Workers:      2,
		Metrics:      reg,
		RemoteCounts: func() (int64, int64) { return 7, 3 },
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	req := smallMatrix()

	// Two campaign submissions (cold then warm) drive the mem tier
	// through misses, puts and hits; two identical leases drive the
	// lease counters and replay the second from cache.
	rawRows(t, srv.URL, req)
	rawRows(t, srv.URL, req)
	jobs, err := req.LeaseJobs(PhaseFuzz, nil)
	if err != nil {
		t.Fatal(err)
	}
	lease := &ShardLease{Proto: LeaseProto, Job: jobs[0].Name, Seed: 11, N: 64,
		Key: strings.Repeat("cd", 32), Request: req}
	for i := 0; i < 2; i++ {
		resp := postLease(t, srv.URL, lease, "")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lease %d: %s", i, resp.Status)
		}
	}

	hits, misses := cache.Counts()
	if hits == 0 || misses == 0 {
		t.Fatalf("instrumented mem tier saw hits=%d misses=%d, want both nonzero", hits, misses)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, want := range []string{
		"druzhba_farmd_campaigns_total 2",
		"druzhba_farmd_leases_total 2",
		"druzhba_farmd_lease_errors_total 0",
		"druzhba_farmd_lease_seconds_count 2",
		`druzhba_cache_gets_total{tier="mem",outcome="hit"}`,
		`druzhba_cache_gets_total{tier="mem",outcome="miss"}`,
		`druzhba_cache_puts_total{tier="mem"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// /v1/stats: the new fields are additive and the remote pair comes
	// straight from the RemoteCounts seam.
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	err = json.NewDecoder(sresp.Body).Decode(&raw)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"campaigns":           2,
		"leases":              2,
		"lease_errors":        0,
		"remote_cache_hits":   7,
		"remote_cache_misses": 3,
	} {
		got, ok := raw[key].(float64)
		if !ok {
			t.Errorf("/v1/stats missing %q: %v", key, raw)
			continue
		}
		if got != want {
			t.Errorf("/v1/stats %s = %v, want %v", key, got, want)
		}
	}
}
