// Package farmd is the long-running campaign service behind dfarmd: the
// serving layer that turns the batch-mode campaign engine of package
// campaign into a daemon for heavy, repeated traffic.
//
// Clients POST a job matrix described as data (MatrixRequest — the JSON
// form of dfarm's flags) to /v1/campaigns; the server expands it onto the
// architecture-generic campaign engine and streams one NDJSON row per job
// back as jobs complete, in matrix order, followed by a summary row. The
// job rows are the same values the engine assembles into its batch report,
// so a streamed campaign renders byte-identically to an offline dfarm run
// at the same settings.
//
// Underneath the server sits a content-addressed shard-result cache
// (campaign.ShardCache): shard results are pure functions of (target
// fingerprint, shard seed, shard size), so the server stores every clean
// result and replays it on resubmission. Submitting an unchanged matrix
// twice executes zero shards the second time — the summary row's cache
// counters make that observable — while streaming byte-identical job rows.
// The package provides three stores: MemCache (bounded in-memory LRU),
// DirCache (one JSON file per shard under a directory, self-validating
// against corruption), and Tiered (LRU over disk).
package farmd

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/drmt"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

// ModeBoth chains a verification phase before the fuzz phase: every
// counterexample trace the prover decodes is fed back into the fuzzer as
// seed traffic. The single-phase modes are campaign.ModeFuzz and
// campaign.ModeVerify.
const ModeBoth = "both"

// MatrixRequest describes a campaign job matrix as data: the JSON body of
// POST /v1/campaigns and the request dfarm -server submits. Fields mirror
// dfarm's flags; zero values take the same defaults.
type MatrixRequest struct {
	// Arch selects the architectures to sweep: "rmt", "drmt" or "all"
	// (empty = "rmt").
	Arch string `json:"arch,omitempty"`

	// Run keeps only benchmarks whose name contains this substring.
	Run string `json:"run,omitempty"`

	// Levels lists rmt optimization levels by name (empty = all four).
	Levels []string `json:"levels,omitempty"`

	// Traffic lists traffic modes ("uniform", "boundary"; empty =
	// uniform). Each mode adds a full matrix sweep.
	Traffic []string `json:"traffic,omitempty"`

	// Procs lists dRMT processor-count variants (empty = each
	// benchmark's default HWConfig; 0 entries also mean the default).
	Procs []int `json:"procs,omitempty"`

	// Seeds lists traffic seeds (empty = [1]).
	Seeds []int64 `json:"seeds,omitempty"`

	// Packets is the packet budget per job (0 = 50000, the paper's
	// workload).
	Packets int `json:"packets,omitempty"`

	// ShardSize is packets per shard (0 = 4096). It is part of the
	// campaign's traffic identity and therefore of every cache key.
	ShardSize int `json:"shard_size,omitempty"`

	// Batch selects the PHV-batch execution strategy: shards execute
	// Batch packets at a time on struct-of-arrays planes (0 = the
	// server's default, typically streaming). Unlike ShardSize it is an
	// execution knob, not traffic identity: reports and cache keys are
	// byte-identical for every value.
	Batch int `json:"batch,omitempty"`

	// MaxCounterexamples caps deduplicated counterexamples per job
	// (0 = 8, negative = unbounded).
	MaxCounterexamples int `json:"max_counterexamples,omitempty"`

	// FailFast cancels the campaign at the first failing shard.
	FailFast bool `json:"failfast,omitempty"`

	// JobTimeoutMS bounds each job's wall clock in milliseconds
	// (0 = the server's default).
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`

	// Mode selects the campaign phases: "fuzz" (empty = fuzz, the random
	// differential workload), "verify" (SAT-based bounded equivalence
	// proofs over the rmt benchmarks), or "both" (verify first, then fuzz
	// with every counterexample trace seeded into the fuzzer's traffic).
	Mode string `json:"mode,omitempty"`

	// VerifyBits lists the bit widths of the proof grid (empty =
	// campaign.DefaultVerifyBits). Verify and both modes only.
	VerifyBits []int `json:"verify_bits,omitempty"`

	// VerifySteps lists the transaction-unrolling depths of the proof grid
	// (empty = campaign.DefaultVerifySteps). Verify and both modes only.
	VerifySteps []int `json:"verify_steps,omitempty"`

	// MaxConflicts bounds solver effort per proof cell (0 = unlimited);
	// an exhausted budget yields an "unknown" verdict deterministically.
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
}

// JobTimeout returns the request's per-job wall-clock budget.
func (r *MatrixRequest) JobTimeout() time.Duration {
	return time.Duration(r.JobTimeoutMS) * time.Millisecond
}

// phases decodes the request's mode into the set of campaign phases to run
// and rejects flag combinations that cannot apply to them.
func (r *MatrixRequest) phases() (runVerify, runFuzz bool, err error) {
	switch r.Mode {
	case "", campaign.ModeFuzz:
		return false, true, nil
	case campaign.ModeVerify:
		if len(r.Levels) > 0 || len(r.Traffic) > 0 || len(r.Procs) > 0 {
			return false, false, fmt.Errorf("farmd: levels, traffic and procs apply to fuzz jobs only")
		}
		return true, false, nil
	case ModeBoth:
		return true, true, nil
	default:
		return false, false, fmt.Errorf("farmd: mode %q (want %s, %s or %s)", r.Mode, campaign.ModeFuzz, campaign.ModeVerify, ModeBoth)
	}
}

// Validate expands every phase of the request without running anything, so
// servers can reject a bad matrix before committing a stream to it.
func (r *MatrixRequest) Validate() error {
	runVerify, runFuzz, err := r.phases()
	if err != nil {
		return err
	}
	if runVerify {
		if _, err := r.VerifyJobs(); err != nil {
			return err
		}
	}
	if runFuzz {
		if _, err := r.FuzzJobs(nil); err != nil {
			return err
		}
	}
	return nil
}

// VerifyJobs expands the request into the verification job matrix: one job
// per rmt benchmark × seed, with cells spanning the requested proof grid.
// Proofs cover rmt machine code, so the drmt architecture has no verify
// phase.
func (r *MatrixRequest) VerifyJobs() ([]campaign.Job, error) {
	arch := r.Arch
	if arch == "" {
		arch = "rmt"
	}
	if arch == "drmt" {
		return nil, fmt.Errorf("farmd: verification applies to the rmt architecture only")
	}
	benchmarks := spec.Match(r.Run)
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("farmd: run %q matches no rmt benchmark to verify (have %v)", r.Run, spec.Names())
	}
	return campaign.VerifyMatrix(benchmarks, r.VerifyBits, r.VerifySteps, r.Seeds, r.MaxConflicts)
}

// Jobs expands the request into the fuzz-mode campaign job matrix, applying
// the same defaults and validation as dfarm's flags.
func (r *MatrixRequest) Jobs() ([]campaign.Job, error) {
	return r.FuzzJobs(nil)
}

// FuzzJobs is Jobs with per-benchmark seed corpora threaded into the rmt
// targets — both mode's verify→fuzz feedback path. Distributed workers call
// it to rebuild the exact job a shard lease addresses: the expansion is a
// pure function of (request, corpus), so every process holding the same
// benchmark registries derives the same matrix.
func (r *MatrixRequest) FuzzJobs(corpus map[string][][]phv.Value) ([]campaign.Job, error) {
	arch := r.Arch
	if arch == "" {
		arch = "rmt"
	}
	if arch != "rmt" && arch != "drmt" && arch != "all" {
		return nil, fmt.Errorf("farmd: arch %q (want rmt, drmt or all)", arch)
	}
	packets := r.Packets
	if packets == 0 {
		packets = 50000
	}
	var levels []core.OptLevel
	if len(r.Levels) > 0 {
		if arch == "drmt" {
			return nil, fmt.Errorf("farmd: levels apply to the rmt architecture only")
		}
		for _, name := range r.Levels {
			lvl, err := cli.ParseLevel(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("farmd: %w", err)
			}
			levels = append(levels, lvl)
		}
	}
	if len(r.Procs) > 0 && arch == "rmt" {
		return nil, fmt.Errorf("farmd: procs apply to the drmt architecture only")
	}
	var simModes []sim.TrafficMode
	var drmtModes []drmt.TrafficMode
	for _, m := range r.Traffic {
		m = strings.TrimSpace(m)
		if !sim.TrafficMode(m).Valid() || m == "" {
			return nil, fmt.Errorf("farmd: unknown traffic mode %q (want %s or %s)", m, sim.TrafficUniform, sim.TrafficBoundary)
		}
		simModes = append(simModes, sim.TrafficMode(m))
		drmtModes = append(drmtModes, drmt.TrafficMode(m))
	}

	var jobs []campaign.Job
	if arch == "rmt" || arch == "all" {
		benchmarks := spec.Match(r.Run)
		if len(benchmarks) == 0 && arch == "rmt" {
			return nil, fmt.Errorf("farmd: run %q matches no rmt benchmark (have %v)", r.Run, spec.Names())
		}
		if len(benchmarks) > 0 {
			rmtJobs, err := campaign.MatrixWithCorpus(benchmarks, levels, simModes, r.Seeds, packets, corpus)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, rmtJobs...)
		}
	}
	if arch == "drmt" || arch == "all" {
		benchmarks := drmt.MatchBenchmarks(r.Run)
		if len(benchmarks) == 0 && arch == "drmt" {
			return nil, fmt.Errorf("farmd: run %q matches no dRMT benchmark (have %v)", r.Run, drmt.BenchmarkNames())
		}
		if len(benchmarks) > 0 {
			drmtJobs, err := campaign.DRMTMatrix(benchmarks, r.Procs, drmtModes, r.Seeds, packets)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, drmtJobs...)
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("farmd: run %q matches no benchmark in any architecture", r.Run)
	}
	return jobs, nil
}

// ParseSeeds parses a comma-separated seed list (dfarm's -seeds syntax)
// into the request form.
func ParseSeeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseProcs parses a comma-separated processor-count list (dfarm's -procs
// syntax) into the request form.
func ParseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of positive integers (dfarm's
// -vbits / -vsteps syntax) into the request form.
func ParseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q (want a positive integer)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// SplitList splits a comma-separated flag value into trimmed non-empty
// elements (dfarm's -levels / -traffic syntax).
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Row is one line of the campaign NDJSON stream: exactly one of Job,
// Summary or Error is set. Job rows arrive in matrix order as jobs
// complete; the Summary row terminates a successful stream; an Error row
// terminates a stream the engine could not finish.
type Row struct {
	Job     *campaign.JobReport `json:"job,omitempty"`
	Summary *Summary            `json:"summary,omitempty"`
	Error   string              `json:"error,omitempty"`
}

// Summary is the stream's terminal row: the non-row remainder of the
// campaign report, including the cache counters that make "the second run
// executed zero shards" observable, and the run's timing.
type Summary struct {
	Passed       bool                 `json:"passed"`
	Jobs         int                  `json:"jobs"`
	TotalChecked int64                `json:"total_checked"`
	StoppedEarly bool                 `json:"stopped_early,omitempty"`
	Cache        *campaign.CacheStats `json:"cache,omitempty"`
	Timing       *campaign.Timing     `json:"timing,omitempty"`
}

// RunMatrix executes every phase of the request on the campaign engine and
// returns one merged report (verify rows first, then fuzz rows, each block
// in matrix order — the same order OnJobReport streamed them). In both
// mode the verify phase runs first, its counterexample traces are decoded
// into concrete PHV inputs, and the fuzz phase replays them as seed
// traffic at the start of every shard — so a proof refutation immediately
// becomes a deterministic fuzz regression. The fuzz phase is skipped when
// the verify phase was cancelled or tripped fail-fast.
//
// Both phases run under the same Options: the worker pool size, the shard
// cache and the OnJobReport stream are shared, and verify shard results
// flow through the same content-addressed cache as fuzz shards.
func RunMatrix(ctx context.Context, req *MatrixRequest, opts campaign.Options) (*campaign.Report, error) {
	return RunMatrixPhases(ctx, req, func(string, *campaign.Report) campaign.Options { return opts })
}

// RunMatrixPhases is RunMatrix with per-phase options: optsFor is called
// once per phase that actually runs, with the phase name (PhaseVerify,
// PhaseFuzz) and — for the fuzz phase of a both-mode run — the completed
// verify report. The distributed coordinator uses it to hand each phase an
// executor whose leases carry exactly the context a remote worker needs to
// rebuild that phase's jobs (the fuzz phase of a both-mode matrix depends
// on the verify phase's counterexample rows).
func RunMatrixPhases(ctx context.Context, req *MatrixRequest, optsFor func(phase string, verifyReport *campaign.Report) campaign.Options) (*campaign.Report, error) {
	runVerify, runFuzz, err := req.phases()
	if err != nil {
		return nil, err
	}
	var vrep *campaign.Report
	var corpus map[string][][]phv.Value
	if runVerify {
		vjobs, err := req.VerifyJobs()
		if err != nil {
			return nil, err
		}
		var verr error
		vrep, verr = campaign.Run(ctx, vjobs, optsFor(PhaseVerify, nil))
		if vrep == nil {
			return nil, verr
		}
		if !runFuzz || verr != nil || vrep.StoppedEarly {
			return vrep, verr
		}
		corpus = campaign.HarvestVerifyCorpus(vrep)
	}
	fjobs, err := req.FuzzJobs(corpus)
	if err != nil {
		return vrep, err
	}
	frep, ferr := campaign.Run(ctx, fjobs, optsFor(PhaseFuzz, vrep))
	if frep == nil {
		return vrep, ferr
	}
	if vrep == nil {
		return frep, ferr
	}
	return mergeReports(vrep, frep), ferr
}

// mergeReports folds two phase reports into one: rows concatenate, the
// deterministic aggregates combine, and the metadata (cache counters,
// timing) sums so a both-mode run reports its full cost.
func mergeReports(a, b *campaign.Report) *campaign.Report {
	out := &campaign.Report{
		Passed:       a.Passed && b.Passed,
		TotalChecked: a.TotalChecked + b.TotalChecked,
		StoppedEarly: a.StoppedEarly || b.StoppedEarly,
	}
	out.Jobs = append(append([]campaign.JobReport{}, a.Jobs...), b.Jobs...)
	if a.Cache != nil || b.Cache != nil {
		cs := &campaign.CacheStats{}
		for _, c := range []*campaign.CacheStats{a.Cache, b.Cache} {
			if c != nil {
				cs.Hits += c.Hits
				cs.Misses += c.Misses
			}
		}
		out.Cache = cs
	}
	if a.Timing != nil && b.Timing != nil {
		t := &campaign.Timing{Workers: a.Timing.Workers, ElapsedMS: a.Timing.ElapsedMS + b.Timing.ElapsedMS}
		if t.ElapsedMS > 0 {
			t.PHVsPerSec = float64(out.TotalChecked) / (t.ElapsedMS / 1e3)
		}
		out.Timing = t
	}
	return out
}
