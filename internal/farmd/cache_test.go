package farmd

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"druzhba/internal/campaign"
)

func res(checked int) *campaign.ShardResult {
	return &campaign.ShardResult{Checked: checked, Ticks: int64(checked) * 3,
		Findings: []campaign.Finding{{Index: 1, Input: "{in}", Got: "{g}", Want: "{w}"}}}
}

func TestMemCacheLRUEviction(t *testing.T) {
	c := NewMemCache(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", res(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestMemCacheRejectsErroredResults(t *testing.T) {
	c := NewMemCache(4)
	c.Put("err", &campaign.ShardResult{Err: errors.New("boom")})
	if _, ok := c.Get("err"); ok {
		t.Fatal("errored result was cached")
	}
}

func TestDirCacheRoundtrip(t *testing.T) {
	c, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := res(42)
	c.Put("deadbeef", want)
	got, ok := c.Get("deadbeef")
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if got.Checked != want.Checked || got.Ticks != want.Ticks || len(got.Findings) != 1 || got.Findings[0] != want.Findings[0] {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, want)
	}
	if got.Err != nil {
		t.Fatalf("roundtrip grew an error: %v", got.Err)
	}
	if _, ok := c.Get("cafebabe"); ok {
		t.Fatal("phantom hit for unknown key")
	}
}

// TestDirCacheDamagedEntriesAreMisses: garbage, truncated and mislabeled
// entry files all read as misses and are removed, so a damaged cache can
// never replay a wrong row.
func TestDirCacheDamagedEntriesAreMisses(t *testing.T) {
	c, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func(path string){
		"garbage":   func(p string) { os.WriteFile(p, []byte("not json at all"), 0o644) },
		"truncated": func(p string) { data, _ := os.ReadFile(p); os.WriteFile(p, data[:len(data)/2], 0o644) },
		"mislabeled": func(p string) {
			other := c.Path("other-key")
			os.MkdirAll(filepath.Dir(other), 0o755)
			data, _ := os.ReadFile(p)
			os.WriteFile(other, data, 0o644) // valid entry copied under the wrong key
			os.Remove(p)
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			key := "key-" + name
			c.Put(key, res(7))
			if _, ok := c.Get(key); !ok {
				t.Fatal("entry missing before damage")
			}
			corrupt(c.Path(key))
			if name == "mislabeled" {
				if _, ok := c.Get("other-key"); ok {
					t.Fatal("mislabeled entry served under the wrong key")
				}
				if _, err := os.Stat(c.Path("other-key")); !os.IsNotExist(err) {
					t.Fatal("mislabeled entry not removed")
				}
				return
			}
			if _, ok := c.Get(key); ok {
				t.Fatalf("%s entry served as a hit", name)
			}
			if _, err := os.Stat(c.Path(key)); !os.IsNotExist(err) {
				t.Fatalf("%s entry not removed", name)
			}
		})
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	mem := NewMemCache(4)
	disk, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewTiered(mem, disk)
	c.Put("k", res(5))
	if mem.Len() != 1 {
		t.Fatal("Put did not reach the fast tier")
	}
	if _, ok := disk.Get("k"); !ok {
		t.Fatal("Put did not reach the slow tier")
	}

	// A fresh fast tier (daemon restart) warms from disk on first Get.
	mem2 := NewMemCache(4)
	c2 := NewTiered(mem2, disk)
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("disk entry not served after restart")
	}
	if mem2.Len() != 1 {
		t.Fatal("disk hit not promoted into the fast tier")
	}
}

// TestDirCacheCorruptionFallsBackToExecution drives the recovery path
// through the real engine: corrupt one on-disk shard entry between a cold
// and a warm run, and the warm run must re-execute exactly that shard while
// producing a byte-identical report.
func TestDirCacheCorruptionFallsBackToExecution(t *testing.T) {
	cache, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := &MatrixRequest{Arch: "all", Run: "counter", Packets: 600, ShardSize: 128}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	opts := campaign.Options{Workers: 2, ShardSize: 128, Cache: cache}

	cold, err := campaign.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	filepath.Walk(cache.Dir(), func(path string, info os.FileInfo, err error) error { //nolint:errcheck // test walk
		if err == nil && !info.IsDir() {
			entries = append(entries, path)
		}
		return nil
	})
	if int64(len(entries)) != cold.Cache.Misses {
		t.Fatalf("disk holds %d entries after %d executed shards", len(entries), cold.Cache.Misses)
	}
	victim := entries[0]
	victimKey := strings.TrimSuffix(filepath.Base(victim), ".json")
	if err := os.WriteFile(victim, []byte(`{"key":"tampered"`), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := campaign.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 1 || warm.Cache.Hits != cold.Cache.Misses-1 {
		t.Fatalf("warm stats %+v after corrupting one of %d entries", warm.Cache, cold.Cache.Misses)
	}
	if warm.Text(false) != cold.Text(false) {
		t.Fatal("warm report differs after corruption fallback")
	}
	// The re-execution healed the damaged entry.
	if _, ok := cache.Get(victimKey); !ok {
		t.Fatal("corrupted entry not rewritten by the warm run")
	}
}
