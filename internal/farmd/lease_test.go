package farmd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"druzhba/internal/campaign"
)

// postLease POSTs a lease and returns the response.
func postLease(t *testing.T, url string, lease *ShardLease, token string) *http.Response {
	t.Helper()
	body, err := json.Marshal(lease)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/leases", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLeaseMatchesLocalExecution pins the fabric's relocation invariant at
// the worker boundary: a shard executed through POST /v1/leases returns
// exactly the result a local runner produces for the same (job, seed, n) —
// the property that makes retries, re-issues and worker death invisible in
// reports.
func TestLeaseMatchesLocalExecution(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer srv.Close()
	req := smallMatrix()
	jobs, err := req.LeaseJobs(PhaseFuzz, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("matrix expanded to no jobs")
	}
	for _, job := range jobs {
		inst, err := job.Target.Build()
		if err != nil {
			t.Fatal(err)
		}
		runner, err := inst.NewRunner()
		if err != nil {
			t.Fatal(err)
		}
		seed := int64(12345)
		want := runner.RunShard(seed, 128)
		if want.Err != nil {
			t.Fatal(want.Err)
		}

		resp := postLease(t, srv.URL, &ShardLease{
			Proto: LeaseProto, Job: job.Name, Seed: seed, N: 128, Request: req,
		}, "")
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("lease for %s: %s: %s", job.Name, resp.Status, msg)
		}
		var wire WireShardResult
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		gotJSON, _ := json.Marshal(wire)
		wantJSON, _ := json.Marshal(WireResult(&want))
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("leased shard of %s differs from local execution:\nlease: %s\nlocal: %s", job.Name, gotJSON, wantJSON)
		}
	}
}

// TestLeaseCachesUnderCoordinatorKey: the worker stores the result under
// the coordinator-issued key verbatim (key spaces are salted per binary,
// so recomputing would file it under the wrong name), and a second lease
// for the same key replays from cache.
func TestLeaseCachesUnderCoordinatorKey(t *testing.T) {
	cache := NewMemCache(0)
	s := NewServer(Config{Cache: cache, Workers: 2})
	srv := httptest.NewServer(s)
	defer srv.Close()
	req := smallMatrix()
	jobs, err := req.LeaseJobs(PhaseFuzz, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32) // a coordinator-space key, opaque here
	lease := &ShardLease{Proto: LeaseProto, Job: jobs[0].Name, Seed: 7, N: 64, Key: key, Request: req}

	resp := postLease(t, srv.URL, lease, "")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first lease: %s", resp.Status)
	}
	if _, ok := cache.Get(key); !ok {
		t.Fatal("result not cached under the coordinator-issued key")
	}
	before := s.Stats().CacheHits
	resp = postLease(t, srv.URL, lease, "")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := s.Stats().CacheHits; got != before+1 {
		t.Fatalf("second lease cache hits %d, want %d", got, before+1)
	}
}

// TestLeaseRejections pins the dispatch protocol's 4xx surface: protocol
// skew, unknown jobs and malformed bodies are explicit rejections, never
// silent wrong rows.
func TestLeaseRejections(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()
	req := smallMatrix()
	cases := []struct {
		name  string
		lease *ShardLease
		want  int
	}{
		{"protocol skew", &ShardLease{Proto: LeaseProto + 1, Job: "x", N: 1, Request: req}, http.StatusConflict},
		{"no request", &ShardLease{Proto: LeaseProto, Job: "x", N: 1}, http.StatusBadRequest},
		{"no packets", &ShardLease{Proto: LeaseProto, Job: "x", Request: req}, http.StatusBadRequest},
		{"unknown job", &ShardLease{Proto: LeaseProto, Job: "no/such/job", N: 1, Request: req}, http.StatusUnprocessableEntity},
		{"bad phase", &ShardLease{Proto: LeaseProto, Phase: "anneal", Job: "x", N: 1, Request: req}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp := postLease(t, srv.URL, tc.lease, "")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestServerAuth pins the fleet-secret gate: with a token configured,
// mutating endpoints 401 without (or with a wrong) bearer token, while
// read-only probes stay open; the right token passes.
func TestServerAuth(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{AuthToken: "s3cret", Workers: 1}))
	defer srv.Close()

	post := func(path, token string, body []byte) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	matrix, _ := json.Marshal(smallMatrix())
	for _, path := range []string{"/v1/campaigns", "/v1/leases"} {
		if got := post(path, "", matrix); got != http.StatusUnauthorized {
			t.Errorf("POST %s without token: %d, want 401", path, got)
		}
		if got := post(path, "wrong", matrix); got != http.StatusUnauthorized {
			t.Errorf("POST %s with wrong token: %d, want 401", path, got)
		}
	}
	for _, path := range []string{"/healthz", "/v1/benchmarks", "/v1/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d, want 200 (read-only endpoints stay open)", path, resp.StatusCode)
		}
	}
	if got := post("/v1/campaigns", "s3cret", matrix); got != http.StatusOK {
		t.Errorf("POST /v1/campaigns with the right token: %d, want 200", got)
	}

	// The client helper threads the token through StreamOptions.
	if _, err := SubmitOpts(context.Background(), srv.URL, smallMatrix(), StreamOptions{Token: "s3cret"}, nil); err != nil {
		t.Fatalf("authorized SubmitOpts: %v", err)
	}
	if _, err := SubmitOpts(context.Background(), srv.URL, smallMatrix(), StreamOptions{}, nil); err == nil || !strings.Contains(err.Error(), "bearer") {
		t.Fatalf("unauthorized SubmitOpts error = %v, want bearer rejection", err)
	}
}

// TestRowWriteTimeoutCancelsStalledClient is the satellite regression
// test: a client that opens a campaign stream and never reads it must have
// its campaign cancelled by the configured row-write deadline — and must
// release its execution slot — instead of wedging engine workers forever.
func TestRowWriteTimeoutCancelsStalledClient(t *testing.T) {
	s := NewServer(Config{Workers: 2, MaxConcurrent: 1, RowWriteTimeout: time.Nanosecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// With a 1ns deadline every row write is already expired when it
	// happens — the deterministic stand-in for a client that stopped
	// reading — so the first write must fail and cancel the campaign
	// promptly.
	body, err := json.Marshal(smallMatrix())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	// The expired deadline may tear the connection down before the
	// response headers ever leave the server — that IS the cancellation
	// path firing; only a complete stream would be the regression.
	if err == nil {
		rows, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && strings.Contains(string(rows), `"summary"`) {
			t.Fatalf("stalled client received a full stream:\n%s", rows)
		}
	}

	// The slot must be free again: with MaxConcurrent=1, a campaign
	// wedged on its stalled client would park this submission in the
	// queue until the context expired. Its own stream hits the same 1ns
	// deadline (EOF is fine) — what it must not do is time out queueing.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	req2, err := http.NewRequestWithContext(ctx2, http.MethodPost, srv.URL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err == nil {
		io.Copy(io.Discard, resp2.Body) //nolint:errcheck
		resp2.Body.Close()
	}
	if ctx2.Err() != nil {
		t.Fatal("second submission timed out queueing: the stalled campaign never released its execution slot")
	}
}

// TestTieredFlushReachesDiskTier pins the graceful-shutdown flush path
// through the tier stack.
func TestTieredFlushReachesDiskTier(t *testing.T) {
	disk, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(NewMemCache(0), disk)
	tiered.Put("aa"+strings.Repeat("0", 62), &campaign.ShardResult{Checked: 1})
	if err := tiered.Flush(); err != nil {
		t.Fatalf("tiered flush: %v", err)
	}
}
