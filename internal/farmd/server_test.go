package farmd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"druzhba/internal/campaign"
)

// smallMatrix is the two-architecture request the server tests submit.
func smallMatrix() *MatrixRequest {
	return &MatrixRequest{Arch: "all", Run: "counter", Packets: 600, ShardSize: 128}
}

// rawRows posts req and returns the response's NDJSON lines.
func rawRows(t *testing.T, url string, req *MatrixRequest) []string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d rows, want at least one job row plus a summary", len(lines))
	}
	return lines
}

// TestServerCachedResubmissionStreamsIdenticalRows is the acceptance
// scenario: submitting the same matrix twice executes zero shards the
// second time (summary cache counters) while the job rows — and the
// reassembled reports — are byte-identical to each other and to an offline
// run of the same matrix.
func TestServerCachedResubmissionStreamsIdenticalRows(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{Cache: NewMemCache(0), Workers: 3}))
	defer srv.Close()
	req := smallMatrix()

	first := rawRows(t, srv.URL, req)
	second := rawRows(t, srv.URL, req)
	if len(first) != len(second) {
		t.Fatalf("row counts differ: %d vs %d", len(first), len(second))
	}
	for i := 0; i < len(first)-1; i++ { // all but the summary row
		if first[i] != second[i] {
			t.Fatalf("job row %d differs between submissions:\n%s\n%s", i, first[i], second[i])
		}
	}
	var sum1, sum2 Row
	if err := json.Unmarshal([]byte(first[len(first)-1]), &sum1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(second[len(second)-1]), &sum2); err != nil {
		t.Fatal(err)
	}
	if sum1.Summary == nil || sum2.Summary == nil {
		t.Fatal("stream did not end with a summary row")
	}
	if sum1.Summary.Cache.Hits != 0 || sum1.Summary.Cache.Misses == 0 {
		t.Fatalf("first submission cache stats: %+v", sum1.Summary.Cache)
	}
	if sum2.Summary.Cache.Misses != 0 || sum2.Summary.Cache.Hits != sum1.Summary.Cache.Misses {
		t.Fatalf("second submission executed shards: %+v (first ran %+v)", sum2.Summary.Cache, sum1.Summary.Cache)
	}

	// Client-reassembled reports render byte-identically to an offline
	// run at the same settings, at several offline worker counts.
	clientRep, err := Submit(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	var clientJSON bytes.Buffer
	if err := clientRep.WriteJSON(&clientJSON, false); err != nil {
		t.Fatal(err)
	}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 5} {
		offline, err := campaign.Run(context.Background(), jobs, campaign.Options{Workers: workers, ShardSize: req.ShardSize})
		if err != nil {
			t.Fatal(err)
		}
		var offlineJSON bytes.Buffer
		if err := offline.WriteJSON(&offlineJSON, false); err != nil {
			t.Fatal(err)
		}
		if clientJSON.String() != offlineJSON.String() {
			t.Fatalf("streamed report differs from offline report at workers=%d:\n--- client ---\n%s--- offline ---\n%s",
				workers, clientJSON.String(), offlineJSON.String())
		}
		if offline.Text(false) != clientRep.Text(false) {
			t.Fatalf("text rendering differs at workers=%d", workers)
		}
	}
}

// TestServerStreamsJobRowsInMatrixOrder: rows arrive one per job, in the
// same order req.Jobs() builds them.
func TestServerStreamsJobRowsInMatrixOrder(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()
	req := smallMatrix()
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	rep, err := SubmitStream(context.Background(), srv.URL, req, func(row Row) error {
		if row.Job != nil {
			names = append(names, row.Job.Name)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(jobs) || len(rep.Jobs) != len(jobs) {
		t.Fatalf("streamed %d rows for %d jobs", len(names), len(jobs))
	}
	for i := range jobs {
		if names[i] != jobs[i].Name {
			t.Fatalf("row %d is %q, want %q", i, names[i], jobs[i].Name)
		}
	}
}

// TestServerRejectsBadMatrix: matrix errors surface as HTTP 400 with a
// JSON error body, before any stream bytes.
func TestServerRejectsBadMatrix(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()
	for name, req := range map[string]*MatrixRequest{
		"bad arch":       {Arch: "quantum"},
		"no benchmarks":  {Run: "no-such-benchmark"},
		"levels on drmt": {Arch: "drmt", Levels: []string{"scc"}},
		"bad traffic":    {Traffic: []string{"chaotic"}},
		"procs on rmt":   {Arch: "rmt", Procs: []int{4}},
	} {
		if _, err := Submit(context.Background(), srv.URL, req); err == nil {
			t.Fatalf("%s: submission accepted", name)
		}
	}
}

// TestServerEndpoints: the sidecar endpoints answer.
func TestServerEndpoints(t *testing.T) {
	s := NewServer(Config{Cache: NewMemCache(0)})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var benches map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&benches); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(benches["rmt"]) == 0 || len(benches["drmt"]) == 0 {
		t.Fatalf("benchmark registries empty: %v", benches)
	}

	if _, err := Submit(context.Background(), srv.URL, smallMatrix()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Campaigns != 1 || stats.Jobs == 0 || stats.CacheMisses == 0 {
		t.Fatalf("stats after one campaign: %+v", stats)
	}
}

// TestSubmitKeepsPartialRowsOnDeadStream: a stream that dies before its
// summary row still yields the rows received so far, marked stopped-early
// and failed — already-streamed work is never thrown away.
func TestSubmitKeepsPartialRowsOnDeadStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		jr := campaign.JobReport{Name: "rmt/x/scc/seed=1", Status: campaign.StatusPass, Checked: 100}
		json.NewEncoder(w).Encode(Row{Job: &jr}) //nolint:errcheck // test stream
		// Connection closes with no summary row.
	}))
	defer srv.Close()
	rep, err := Submit(context.Background(), srv.URL, &MatrixRequest{})
	if err == nil {
		t.Fatal("dead stream reported no error")
	}
	if rep == nil || len(rep.Jobs) != 1 || rep.Jobs[0].Name != "rmt/x/scc/seed=1" {
		t.Fatalf("partial rows lost: %+v", rep)
	}
	if rep.Passed || !rep.StoppedEarly || rep.TotalChecked != 100 {
		t.Fatalf("partial report not finalized as cancelled: %+v", rep)
	}
}

// TestServerJobTimeoutDefault: the server's default job timeout applies
// when the request sets none, and the report surfaces the timeout without
// wedging the daemon.
func TestServerJobTimeoutDefault(t *testing.T) {
	// The wide-fanin benchmark at a large packet count cannot finish in a
	// microsecond; the daemon must still answer promptly.
	srv := httptest.NewServer(NewServer(Config{JobTimeout: time.Microsecond}))
	defer srv.Close()
	req := &MatrixRequest{Arch: "drmt", Run: "wide-fanin", Packets: 200000, ShardSize: 4096}
	start := time.Now()
	rep, err := Submit(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timed-out campaign took %v", elapsed)
	}
	if rep.Passed {
		t.Fatal("campaign passed despite an impossible job timeout")
	}
	if !strings.Contains(rep.Jobs[0].Error, "wall-clock budget") {
		t.Fatalf("job error %q does not mention the budget", rep.Jobs[0].Error)
	}
}
