package farmd

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"druzhba/internal/campaign"
)

// MemCache is a bounded in-memory LRU campaign.ShardCache: the hot tier of
// a long-running daemon. It is safe for concurrent use.
type MemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *memEntry
	items map[string]*list.Element
}

type memEntry struct {
	key string
	res *campaign.ShardResult
}

// NewMemCache returns an LRU cache holding at most capacity shard results
// (capacity <= 0 means 4096).
func NewMemCache(capacity int) *MemCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &MemCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// Get implements campaign.ShardCache.
func (c *MemCache) Get(key string) (*campaign.ShardResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

// Put implements campaign.ShardCache, evicting the least recently used
// entry when the cache is full.
func (c *MemCache) Put(key string, res *campaign.ShardResult) {
	if res == nil || res.Err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*memEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&memEntry{key: key, res: res})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*memEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// diskEntry is DirCache's on-disk form of one shard result. The embedded
// key lets Get detect renamed or cross-copied files; results with harness
// errors are never persisted, so the form carries no error field.
type diskEntry struct {
	Key      string             `json:"key"`
	Checked  int                `json:"checked"`
	Ticks    int64              `json:"ticks"`
	Findings []campaign.Finding `json:"findings,omitempty"`
}

// DirCache is an on-disk campaign.ShardCache: one JSON file per shard
// result, fanned into 256 prefix buckets under a root directory, written
// atomically (temp file + rename). A corrupt, truncated or mislabeled
// entry reads as a miss and is deleted, so damage costs re-execution,
// never a wrong row. DirCache never evicts; the directory is the
// persistent tier a daemon restart warms from.
type DirCache struct {
	dir string
}

// NewDirCache opens (creating if needed) an on-disk cache rooted at dir.
func NewDirCache(dir string) (*DirCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farmd: cache dir: %w", err)
	}
	return &DirCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DirCache) Dir() string { return c.dir }

// Path returns the entry file a key maps to (the key's first two hex
// digits name the bucket).
func (c *DirCache) Path(key string) string {
	bucket := "00"
	if len(key) >= 2 {
		bucket = key[:2]
	}
	return filepath.Join(c.dir, bucket, key+".json")
}

// Get implements campaign.ShardCache. Every failure mode — unreadable
// file, invalid JSON, a key mismatch from a renamed or partially written
// entry — is a miss; the damaged file is removed best-effort so the next
// Put heals it.
func (c *DirCache) Get(key string) (*campaign.ShardResult, bool) {
	path := c.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Key != key {
		os.Remove(path)
		return nil, false
	}
	return &campaign.ShardResult{Checked: ent.Checked, Ticks: ent.Ticks, Findings: ent.Findings}, true
}

// Put implements campaign.ShardCache with an atomic write: concurrent
// writers race benignly (last rename wins, every version is a valid
// entry), and readers never observe a partial file.
func (c *DirCache) Put(key string, res *campaign.ShardResult) {
	if res == nil || res.Err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Key: key, Checked: res.Checked, Ticks: res.Ticks, Findings: res.Findings})
	if err != nil {
		return
	}
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Tiered layers a fast cache (typically MemCache) over a slow one
// (typically DirCache): reads promote slow-tier hits into the fast tier,
// writes go to both. It is how dfarmd combines a bounded hot set with
// unbounded persistence.
type Tiered struct {
	fast campaign.ShardCache
	slow campaign.ShardCache
}

// NewTiered returns a two-tier cache over fast and slow.
func NewTiered(fast, slow campaign.ShardCache) *Tiered {
	return &Tiered{fast: fast, slow: slow}
}

// Get implements campaign.ShardCache.
func (c *Tiered) Get(key string) (*campaign.ShardResult, bool) {
	if res, ok := c.fast.Get(key); ok {
		return res, true
	}
	res, ok := c.slow.Get(key)
	if ok {
		c.fast.Put(key, res)
	}
	return res, ok
}

// Put implements campaign.ShardCache.
func (c *Tiered) Put(key string, res *campaign.ShardResult) {
	c.slow.Put(key, res)
	c.fast.Put(key, res)
}
