package farmd

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/obs"
)

// MemCache is a bounded in-memory LRU campaign.ShardCache: the hot tier of
// a long-running daemon. It is safe for concurrent use.
type MemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *memEntry
	items map[string]*list.Element

	evictions *obs.Counter // nil = uncounted
}

type memEntry struct {
	key string
	res *campaign.ShardResult
}

// NewMemCache returns an LRU cache holding at most capacity shard results
// (capacity <= 0 means 4096).
func NewMemCache(capacity int) *MemCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &MemCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// Get implements campaign.ShardCache.
func (c *MemCache) Get(key string) (*campaign.ShardResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

// Put implements campaign.ShardCache, evicting the least recently used
// entry when the cache is full.
func (c *MemCache) Put(key string, res *campaign.ShardResult) {
	if res == nil || res.Err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*memEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&memEntry{key: key, res: res})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*memEntry).key)
		c.evictions.Inc()
	}
}

// SetEvictionCounter wires the tier's eviction counter (observability
// only; nil disables counting).
func (c *MemCache) SetEvictionCounter(evictions *obs.Counter) {
	c.mu.Lock()
	c.evictions = evictions
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// diskEntry is DirCache's on-disk form of one shard result. The embedded
// key lets Get detect renamed or cross-copied files; results with harness
// errors are never persisted, so the form carries no error field. Verify
// cells serialize all their deterministic fields; solve wall time is
// excluded at the type level (VerifyCell.SolveMS is json:"-"), so cached
// replays never leak one run's timing into another's report.
type diskEntry struct {
	Key      string                `json:"key"`
	Checked  int                   `json:"checked"`
	Ticks    int64                 `json:"ticks"`
	Findings []campaign.Finding    `json:"findings,omitempty"`
	Cells    []campaign.VerifyCell `json:"cells,omitempty"`
}

// DirCache is an on-disk campaign.ShardCache: one JSON file per shard
// result, fanned into 256 prefix buckets under a root directory, written
// atomically (temp file + rename). A corrupt, truncated or mislabeled
// entry reads as a miss and is deleted, so damage costs re-execution,
// never a wrong row.
//
// With a byte cap (NewDirCacheLimit) the directory is a size-bounded LRU:
// opening the cache scans existing entries (oldest-modified = least
// recent), Get refreshes recency, and Put evicts the least recently used
// entries once the cap is exceeded — so a long-running daemon's disk
// footprint stays bounded. Without a cap the directory only grows; it is
// the persistent tier a daemon restart warms from.
type DirCache struct {
	dir      string
	maxBytes int64

	// LRU accounting, used only when maxBytes > 0. File mutations stay
	// under mu so eviction never races a concurrent Put's accounting.
	mu    sync.Mutex
	size  int64
	order *list.List // front = most recently used; values are *dirEntry
	items map[string]*list.Element

	evictions, evictedBytes *obs.Counter // nil = uncounted
}

type dirEntry struct {
	key  string
	size int64
}

// NewDirCache opens (creating if needed) an unbounded on-disk cache rooted
// at dir.
func NewDirCache(dir string) (*DirCache, error) {
	return NewDirCacheLimit(dir, 0)
}

// NewDirCacheLimit opens (creating if needed) an on-disk cache rooted at
// dir, holding at most maxBytes of entry files (0 = unbounded). Existing
// entries are scanned in modification-time order to seed the recency list,
// and evicted oldest-first if they already exceed the cap.
func NewDirCacheLimit(dir string, maxBytes int64) (*DirCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farmd: cache dir: %w", err)
	}
	c := &DirCache{dir: dir, maxBytes: maxBytes}
	if maxBytes > 0 {
		c.order = list.New()
		c.items = map[string]*list.Element{}
		if err := c.scan(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.evict()
		c.mu.Unlock()
	}
	return c, nil
}

// scan seeds the LRU accounting from the files already on disk: entries
// sorted by modification time, oldest first, so the least recently written
// survivors of the previous process are the first eviction candidates.
func (c *DirCache) scan() error {
	type stat struct {
		key   string
		size  int64
		mtime time.Time
	}
	var stats []stat
	buckets, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("farmd: cache dir: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(c.dir, b.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			stats = append(stats, stat{key: strings.TrimSuffix(name, ".json"), size: info.Size(), mtime: info.ModTime()})
		}
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].mtime.Before(stats[j].mtime) })
	for _, s := range stats {
		c.items[s.key] = c.order.PushFront(&dirEntry{key: s.key, size: s.size})
		c.size += s.size
	}
	return nil
}

// track records (or refreshes) one entry's accounting. Caller holds mu.
func (c *DirCache) track(key string, size int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*dirEntry)
		c.size += size - ent.size
		ent.size = size
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&dirEntry{key: key, size: size})
	c.size += size
}

// forget drops one entry's accounting. Caller holds mu.
func (c *DirCache) forget(key string) {
	if el, ok := c.items[key]; ok {
		c.size -= el.Value.(*dirEntry).size
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// evict removes least-recently-used entry files until the cache fits its
// cap again. The most recent entry always survives, even when it alone
// exceeds the cap — eviction bounds the tail, it never corrupts or empties
// the cache. Caller holds mu.
func (c *DirCache) evict() {
	for c.size > c.maxBytes && c.order.Len() > 1 {
		oldest := c.order.Back()
		ent := oldest.Value.(*dirEntry)
		os.Remove(c.Path(ent.key))
		c.size -= ent.size
		c.order.Remove(oldest)
		delete(c.items, ent.key)
		c.evictions.Inc()
		c.evictedBytes.Add(float64(ent.size))
	}
}

// SetEvictionCounters wires the tier's eviction count and byte counters
// (observability only; nil disables counting).
func (c *DirCache) SetEvictionCounters(evictions, evictedBytes *obs.Counter) {
	c.mu.Lock()
	c.evictions = evictions
	c.evictedBytes = evictedBytes
	c.mu.Unlock()
}

// Len returns the number of tracked entries (bounded caches only).
func (c *DirCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return 0
	}
	return len(c.items)
}

// Size returns the tracked entry bytes (bounded caches only).
func (c *DirCache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Dir returns the cache's root directory.
func (c *DirCache) Dir() string { return c.dir }

// Path returns the entry file a key maps to (the key's first two hex
// digits name the bucket).
func (c *DirCache) Path(key string) string {
	bucket := "00"
	if len(key) >= 2 {
		bucket = key[:2]
	}
	return filepath.Join(c.dir, bucket, key+".json")
}

// Get implements campaign.ShardCache. Every failure mode — unreadable
// file, invalid JSON, a key mismatch from a renamed or partially written
// entry — is a miss; the damaged file is removed best-effort so the next
// Put heals it.
func (c *DirCache) Get(key string) (*campaign.ShardResult, bool) {
	path := c.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Key != key {
		os.Remove(path)
		if c.maxBytes > 0 {
			c.mu.Lock()
			c.forget(key)
			c.mu.Unlock()
		}
		return nil, false
	}
	if c.maxBytes > 0 {
		c.mu.Lock()
		c.track(key, int64(len(data)))
		c.mu.Unlock()
	}
	return &campaign.ShardResult{Checked: ent.Checked, Ticks: ent.Ticks, Findings: ent.Findings, Cells: ent.Cells}, true
}

// Put implements campaign.ShardCache with an atomic write: concurrent
// writers race benignly (last rename wins, every version is a valid
// entry), and readers never observe a partial file.
func (c *DirCache) Put(key string, res *campaign.ShardResult) {
	if res == nil || res.Err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Key: key, Checked: res.Checked, Ticks: res.Ticks, Findings: res.Findings, Cells: res.Cells})
	if err != nil {
		return
	}
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if c.maxBytes > 0 {
		c.mu.Lock()
		c.track(key, int64(len(data)))
		c.evict()
		c.mu.Unlock()
	}
}

// Flusher is the optional cache interface graceful shutdown drives:
// caches that buffer state (the disk tier's directory metadata) persist it
// durably before the process exits.
type Flusher interface {
	Flush() error
}

// Flush implements Flusher: it fsyncs the root and bucket directories so
// every rename Put ever performed is durable, not just visible. Entry
// files themselves are written atomically by Put; what a crash can lose
// without the directory syncs is the rename itself.
func (c *DirCache) Flush() error {
	dirs := []string{c.dir}
	if buckets, err := os.ReadDir(c.dir); err == nil {
		for _, b := range buckets {
			if b.IsDir() {
				dirs = append(dirs, filepath.Join(c.dir, b.Name()))
			}
		}
	}
	var firstErr error
	for _, dir := range dirs {
		d, err := os.Open(dir)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := d.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		d.Close()
	}
	return firstErr
}

// Tiered layers a fast cache (typically MemCache) over a slow one
// (typically DirCache): reads promote slow-tier hits into the fast tier,
// writes go to both. It is how dfarmd combines a bounded hot set with
// unbounded persistence.
type Tiered struct {
	fast campaign.ShardCache
	slow campaign.ShardCache
}

// NewTiered returns a two-tier cache over fast and slow.
func NewTiered(fast, slow campaign.ShardCache) *Tiered {
	return &Tiered{fast: fast, slow: slow}
}

// Get implements campaign.ShardCache.
func (c *Tiered) Get(key string) (*campaign.ShardResult, bool) {
	if res, ok := c.fast.Get(key); ok {
		return res, true
	}
	res, ok := c.slow.Get(key)
	if ok {
		c.fast.Put(key, res)
	}
	return res, ok
}

// Put implements campaign.ShardCache.
func (c *Tiered) Put(key string, res *campaign.ShardResult) {
	c.slow.Put(key, res)
	c.fast.Put(key, res)
}

// Flush implements Flusher, flushing whichever tiers buffer state.
func (c *Tiered) Flush() error {
	var firstErr error
	for _, tier := range []campaign.ShardCache{c.fast, c.slow} {
		if f, ok := tier.(Flusher); ok {
			if err := f.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
