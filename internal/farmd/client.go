package farmd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"druzhba/internal/campaign"
)

// Submit posts a matrix request to a dfarmd server and reassembles the
// streamed rows into a campaign report. The reassembled report carries the
// same job rows, verdict and totals the server's engine produced — plus the
// summary row's cache and timing metadata — so rendering it is
// byte-identical to rendering an offline run of the same matrix.
//
// When the stream dies mid-campaign (cancellation, server failure), the
// partial report reassembled so far is returned together with the error —
// marked stopped-early and failed — matching the offline engine's
// partial-report-on-cancel behavior, so already-streamed rows are never
// thrown away.
func Submit(ctx context.Context, server string, req *MatrixRequest) (*campaign.Report, error) {
	return SubmitStream(ctx, server, req, nil)
}

// SubmitStream is Submit with a per-row callback invoked as rows arrive
// (nil onRow is allowed); returning an error from the callback abandons
// the stream. This is the delta-consuming form: a monitoring client can
// render each job the moment the server finishes it.
func SubmitStream(ctx context.Context, server string, req *MatrixRequest, onRow func(Row) error) (*campaign.Report, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("farmd: encode request: %w", err)
	}
	url := strings.TrimSuffix(server, "/") + "/v1/campaigns"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("farmd: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("farmd: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var decoded struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &decoded) == nil && decoded.Error != "" {
			return nil, fmt.Errorf("farmd: server: %s", decoded.Error)
		}
		return nil, fmt.Errorf("farmd: server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	rep := &campaign.Report{Passed: true}
	// partial finalizes the report for a stream that died before its
	// summary row: the rows received so far are kept, and the verdict
	// mirrors a cancelled offline run.
	partial := func(err error) (*campaign.Report, error) {
		rep.Passed = false
		rep.StoppedEarly = true
		for i := range rep.Jobs {
			rep.TotalChecked += int64(rep.Jobs[i].Checked)
		}
		return rep, err
	}
	sawSummary := false
	// ReadBytes rather than a Scanner: an unbounded-counterexample job
	// row has no a-priori size cap, and a row the server produced must
	// never fail the client.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var readErr error
	for readErr == nil {
		var line []byte
		line, readErr = br.ReadBytes('\n')
		if readErr != nil && readErr != io.EOF {
			return partial(fmt.Errorf("farmd: stream: %w", readErr))
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return partial(fmt.Errorf("farmd: bad stream row: %w", err))
		}
		if onRow != nil {
			if err := onRow(row); err != nil {
				return partial(err)
			}
		}
		switch {
		case row.Error != "":
			return partial(fmt.Errorf("farmd: server: %s", row.Error))
		case row.Job != nil:
			rep.Jobs = append(rep.Jobs, *row.Job)
		case row.Summary != nil:
			rep.Passed = row.Summary.Passed
			rep.TotalChecked = row.Summary.TotalChecked
			rep.StoppedEarly = row.Summary.StoppedEarly
			rep.Cache = row.Summary.Cache
			rep.Timing = row.Summary.Timing
			sawSummary = true
		}
	}
	if !sawSummary {
		return partial(fmt.Errorf("farmd: stream ended without a summary row (%d job rows received)", len(rep.Jobs)))
	}
	return rep, nil
}
