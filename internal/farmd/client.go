package farmd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"druzhba/internal/campaign"
)

// StreamOptions configures a campaign submission stream.
type StreamOptions struct {
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>".
	Token string

	// LastRow is the number of stream rows already received; a resumable
	// server (one that answers with a Campaign-Id header) replays the
	// stream from this index instead of restarting the campaign.
	LastRow int

	// Client is the HTTP client to submit with (nil = http.DefaultClient).
	// Fault-injection tests thread a chaos transport through here.
	Client *http.Client

	// NoResume disables automatic reconnection on mid-stream transport
	// failures even when the server advertises resumability.
	NoResume bool
}

func (o *StreamOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

// Stream is one open NDJSON campaign stream: rows are read with Next until
// io.EOF. CampaignID is non-empty when the server can replay this stream
// from an index (the fabric coordinator); plain dfarmd streams are not
// resumable because a re-submission would re-run the campaign.
type Stream struct {
	// CampaignID identifies the campaign for resumption ("" = stream is
	// not resumable).
	CampaignID string

	body io.ReadCloser
	br   *bufio.Reader

	// Rows is the count of rows received over this stream's lifetime,
	// including rows inherited from a resumed predecessor — exactly the
	// Last-Row index a successor stream should ask for.
	Rows int
}

// OpenStream posts a matrix request and returns the open row stream. A
// non-2xx response is decoded into an error; the campaign never started
// (or, for a resume, the stream did not reattach).
func OpenStream(ctx context.Context, server string, req *MatrixRequest, opts StreamOptions) (*Stream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("farmd: encode request: %w", err)
	}
	url := strings.TrimSuffix(server, "/") + "/v1/campaigns"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("farmd: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if opts.Token != "" {
		httpReq.Header.Set("Authorization", "Bearer "+opts.Token)
	}
	if opts.LastRow > 0 {
		httpReq.Header.Set("Last-Row", strconv.Itoa(opts.LastRow))
	}
	resp, err := opts.client().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("farmd: submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var decoded struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &decoded) == nil && decoded.Error != "" {
			return nil, fmt.Errorf("farmd: server: %s", decoded.Error)
		}
		return nil, fmt.Errorf("farmd: server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return &Stream{
		CampaignID: resp.Header.Get("Campaign-Id"),
		body:       resp.Body,
		// ReadBytes rather than a Scanner: an unbounded-counterexample job
		// row has no a-priori size cap, and a row the server produced must
		// never fail the client.
		br:   bufio.NewReaderSize(resp.Body, 64<<10),
		Rows: opts.LastRow,
	}, nil
}

// Next returns the stream's next row; io.EOF means the server closed the
// stream cleanly after its last row.
func (s *Stream) Next() (Row, error) {
	for {
		line, err := s.br.ReadBytes('\n')
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if err != nil {
				if err == io.EOF {
					return Row{}, io.EOF
				}
				return Row{}, fmt.Errorf("farmd: stream: %w", err)
			}
			continue
		}
		var row Row
		if uerr := json.Unmarshal(line, &row); uerr != nil {
			return Row{}, fmt.Errorf("farmd: bad stream row: %w", uerr)
		}
		s.Rows++
		return row, nil
	}
}

// Close releases the stream's connection.
func (s *Stream) Close() error { return s.body.Close() }

// Submit posts a matrix request to a dfarmd server and reassembles the
// streamed rows into a campaign report. The reassembled report carries the
// same job rows, verdict and totals the server's engine produced — plus the
// summary row's cache and timing metadata — so rendering it is
// byte-identical to rendering an offline run of the same matrix.
//
// When the stream dies mid-campaign (cancellation, server failure), the
// partial report reassembled so far is returned together with the error —
// marked stopped-early and failed — matching the offline engine's
// partial-report-on-cancel behavior, so already-streamed rows are never
// thrown away.
func Submit(ctx context.Context, server string, req *MatrixRequest) (*campaign.Report, error) {
	return SubmitOpts(ctx, server, req, StreamOptions{}, nil)
}

// SubmitStream is Submit with a per-row callback invoked as rows arrive
// (nil onRow is allowed); returning an error from the callback abandons
// the stream. This is the delta-consuming form: a monitoring client can
// render each job the moment the server finishes it.
func SubmitStream(ctx context.Context, server string, req *MatrixRequest, onRow func(Row) error) (*campaign.Report, error) {
	return SubmitOpts(ctx, server, req, StreamOptions{}, onRow)
}

// resumeAttempts bounds consecutive reconnections of a resumable stream;
// any successfully received row resets the count.
const resumeAttempts = 5

// SubmitOpts is SubmitStream with explicit stream options. Against a
// server that advertises resumability (the fabric coordinator's
// Campaign-Id header), a stream severed mid-campaign is transparently
// reattached with the Last-Row index, so the reassembled report — and any
// NDJSON a caller renders from onRow — is byte-identical to an unsevered
// run; the campaign itself keeps executing server-side while the client is
// away. Non-resumable streams fail as before, returning the partial
// report.
func SubmitOpts(ctx context.Context, server string, req *MatrixRequest, opts StreamOptions, onRow func(Row) error) (*campaign.Report, error) {
	rep := &campaign.Report{Passed: true}
	// partial finalizes the report for a stream that died before its
	// summary row: the rows received so far are kept, and the verdict
	// mirrors a cancelled offline run.
	partial := func(err error) (*campaign.Report, error) {
		rep.Passed = false
		rep.StoppedEarly = true
		for i := range rep.Jobs {
			rep.TotalChecked += int64(rep.Jobs[i].Checked)
		}
		return rep, err
	}

	stream, err := OpenStream(ctx, server, req, opts)
	if err != nil {
		return nil, err
	}
	defer func() { stream.Close() }()

	attempts := 0
	for {
		row, err := stream.Next()
		if err != nil {
			if err == io.EOF {
				return partial(fmt.Errorf("farmd: stream ended without a summary row (%d rows received)", stream.Rows))
			}
			if opts.NoResume || stream.CampaignID == "" || ctx.Err() != nil {
				return partial(err)
			}
			// The campaign is still running server-side; reattach at the
			// row after the last one received.
			attempts++
			if attempts > resumeAttempts {
				return partial(fmt.Errorf("farmd: stream resume gave up after %d attempts: %w", resumeAttempts, err))
			}
			select {
			case <-time.After(time.Duration(attempts) * 100 * time.Millisecond):
			case <-ctx.Done():
				return partial(err)
			}
			ropts := opts
			ropts.LastRow = stream.Rows
			next, rerr := OpenStream(ctx, server, req, ropts)
			if rerr != nil {
				continue
			}
			stream.Close()
			stream = next
			continue
		}
		attempts = 0
		if onRow != nil {
			if err := onRow(row); err != nil {
				return partial(err)
			}
		}
		switch {
		case row.Error != "":
			return partial(fmt.Errorf("farmd: server: %s", row.Error))
		case row.Job != nil:
			rep.Jobs = append(rep.Jobs, *row.Job)
		case row.Summary != nil:
			rep.Passed = row.Summary.Passed
			rep.TotalChecked = row.Summary.TotalChecked
			rep.StoppedEarly = row.Summary.StoppedEarly
			rep.Cache = row.Summary.Cache
			rep.Timing = row.Summary.Timing
			return rep, nil
		}
	}
}
