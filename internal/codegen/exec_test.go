package codegen

// Cross-validation of the emitted pipeline descriptions against the
// in-process engines: the generated Go source is compiled into a real
// binary that reads PHVs on stdin and prints the pipeline's outputs; the
// same trace is run through core's interpreter and the outputs must match
// exactly. This pins the code generator's semantics to the machine model's.

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
)

// stdinDriver reads whitespace-separated container values, one PHV per
// line, executes the pipeline and prints the resulting containers.
const stdinDriver = `package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gen/pipeline"
)

func main() {
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		phv := make([]int64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			phv[i] = v
		}
		out := pipeline.Execute(phv)
		for i, v := range out {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
}
`

func TestGeneratedMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	rng := rand.New(rand.NewSource(23))
	grids := []struct {
		depth, width int
		atom         string
	}{
		{2, 2, "pred_raw"},
		{1, 1, "pair"},
		{3, 1, "if_else_raw"},
	}
	for _, g := range grids {
		g := g
		t.Run(fmt.Sprintf("%dx%d-%s", g.depth, g.width, g.atom), func(t *testing.T) {
			spec := core.Spec{
				Depth:        g.depth,
				Width:        g.width,
				StatelessALU: atoms.MustLoad("stateless_full"),
				StatefulALU:  atoms.MustLoad(g.atom),
			}
			req, err := spec.RequiredPairs()
			if err != nil {
				t.Fatal(err)
			}
			code := machinecode.New()
			for _, h := range req {
				if h.Domain > 0 {
					code.Set(h.Name, int64(rng.Intn(h.Domain)))
				} else {
					code.Set(h.Name, int64(rng.Intn(10)))
				}
			}
			// Random trace.
			n := 200
			var stdin bytes.Buffer
			trace := phv.NewTrace()
			phvLen := spec.PHVLen
			if phvLen == 0 {
				phvLen = spec.Width
			}
			for i := 0; i < n; i++ {
				vals := make([]phv.Value, phvLen)
				parts := make([]string, phvLen)
				for c := range vals {
					vals[c] = int64(rng.Intn(1 << 16))
					parts[c] = fmt.Sprint(vals[c])
				}
				trace.Append(phv.FromValues(vals))
				stdin.WriteString(strings.Join(parts, " ") + "\n")
			}

			// Interpreter reference (dataflow processing = per-PHV result).
			interp, err := core.Build(spec, code, core.SCCInlining)
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for i := 0; i < trace.Len(); i++ {
				out, err := interp.Process(trace.At(i).Clone())
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]string, out.Len())
				for c := 0; c < out.Len(); c++ {
					parts[c] = fmt.Sprint(out.Get(c))
				}
				want = append(want, strings.Join(parts, " "))
			}

			for _, level := range []core.OptLevel{core.SCCPropagation, core.SCCInlining} {
				src, err := Generate(spec, code, Options{Level: level, Package: "pipeline"})
				if err != nil {
					t.Fatalf("Generate(%v): %v", level, err)
				}
				dir := t.TempDir()
				for name, content := range map[string]string{
					"go.mod":               "module gen\n\ngo 1.22\n",
					"pipeline/pipeline.go": src,
					"main.go":              stdinDriver,
				} {
					path := filepath.Join(dir, name)
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				bin := filepath.Join(dir, "simbin")
				build := exec.Command("go", "build", "-o", bin, ".")
				build.Dir = dir
				if out, err := build.CombinedOutput(); err != nil {
					t.Fatalf("compile %v: %v\n%s", level, err, out)
				}
				cmd := exec.Command(bin)
				cmd.Stdin = bytes.NewReader(stdin.Bytes())
				out, err := cmd.Output()
				if err != nil {
					t.Fatalf("run %v: %v", level, err)
				}
				sc := bufio.NewScanner(bytes.NewReader(out))
				line := 0
				for sc.Scan() {
					if line >= len(want) {
						t.Fatalf("%v: too many output lines", level)
					}
					if got := sc.Text(); got != want[line] {
						t.Fatalf("%v: PHV %d: generated binary %q, interpreter %q", level, line, got, want[line])
					}
					line++
				}
				if line != len(want) {
					t.Fatalf("%v: got %d output lines, want %d", level, line, len(want))
				}
			}
		})
	}
}
