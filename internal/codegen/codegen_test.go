package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"druzhba/internal/aludsl"
	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/machinecode"
)

// figure6Spec reconstructs the running example of Fig. 6: one stateful ALU
// computing state[0] = arith_op(mux2(phv), mux2(phv)).
func figure6Spec(t *testing.T) (core.Spec, *machinecode.Program) {
	t.Helper()
	statefulSrc := `
type: stateful
state variables: {state_0}
packet fields: {pkt_0, pkt_1}
state_0 = arith_op(Mux2(pkt_0, pkt_1), Mux2(pkt_0, pkt_1));
`
	sf, err := aludsl.Parse(statefulSrc)
	if err != nil {
		t.Fatal(err)
	}
	sf.Name = "figure6"
	spec := core.Spec{
		Depth:        1,
		Width:        1,
		PHVLen:       2,
		StatelessALU: atoms.MustLoad("stateless_const"),
		StatefulALU:  sf,
	}
	req, err := spec.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	// Fig. 6's machine code: arith opcode 0 (add), op0 mux 0, op1 mux 1.
	code.Set(machinecode.ALUHoleName(0, true, 0, "arith_op_0"), 0)
	code.Set(machinecode.ALUHoleName(0, true, 0, "mux2_0"), 0)
	code.Set(machinecode.ALUHoleName(0, true, 0, "mux2_1"), 1)
	return spec, code
}

func TestGenerateVersion1(t *testing.T) {
	spec, code := figure6Spec(t)
	src, err := Generate(spec, code, Options{Level: core.Unoptimized})
	if err != nil {
		t.Fatal(err)
	}
	// v1: the ALU loads machine code from the hash map and helpers take an
	// opcode parameter they branch on.
	for _, want := range []string{
		`v_arith_op_0 := values["pipeline_stage_0_stateful_alu_0_arith_op_0"]`,
		`v_mux2_0 := values["pipeline_stage_0_stateful_alu_0_mux2_0"]`,
		"func pipeline_stage_0_stateful_alu_0_arith_op_0(op0, op1, opcode int64) int64 {",
		"if opcode == 0 {",
		"func Execute(values map[string]int64, phv []int64) []int64 {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("v1 output missing %q\n%s", want, src)
		}
	}
}

func TestGenerateVersion2(t *testing.T) {
	spec, code := figure6Spec(t)
	src, err := Generate(spec, code, Options{Level: core.SCCPropagation})
	if err != nil {
		t.Fatal(err)
	}
	// v2: helpers remain but are specialized — no opcode parameters, no
	// hash map lookups, single-expression bodies (Fig. 6 version 2).
	for _, want := range []string{
		"func pipeline_stage_0_stateful_alu_0_mux2_0(op0, op1 int64) int64 {\n\treturn op0\n}",
		"func pipeline_stage_0_stateful_alu_0_mux2_1(op0, op1 int64) int64 {\n\treturn op1\n}",
		"func pipeline_stage_0_stateful_alu_0_arith_op_0(op0, op1 int64) int64 {\n\treturn ((op0 + op1) & mask)\n}",
		"func Execute(phv []int64) []int64 {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("v2 output missing %q\n%s", want, src)
		}
	}
	if strings.Contains(src, "values[") {
		t.Error("v2 output still contains hash map lookups")
	}
	if strings.Contains(src, "opcode") {
		t.Error("v2 output still contains opcode parameters")
	}
}

func TestGenerateVersion3(t *testing.T) {
	spec, code := figure6Spec(t)
	src, err := Generate(spec, code, Options{Level: core.SCCInlining})
	if err != nil {
		t.Fatal(err)
	}
	// v3 (Fig. 6 version 3): "state[0] = phv[0] + phv[1]" — helpers gone.
	if !strings.Contains(src, "state[0] = ((phv[0] + phv[1]) & mask)") {
		t.Errorf("v3 output missing inlined assignment:\n%s", src)
	}
	if strings.Contains(src, "_mux2_0(") || strings.Contains(src, "_arith_op_0(") {
		t.Error("v3 output still contains helper calls")
	}
}

// compileGenerated writes the generated source into a temp module and
// compiles it with the Go toolchain.
func compileGenerated(t *testing.T, src string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pipeline.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated code does not compile: %v\n%s\n--- source ---\n%s", err, out, src)
	}
}

func TestGeneratedCodeCompiles(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	// A realistic grid: 2x2 pred_raw over the full stateless ALU.
	spec := core.Spec{
		Depth:        2,
		Width:        2,
		StatelessALU: atoms.MustLoad("stateless_full"),
		StatefulALU:  atoms.MustLoad("pred_raw"),
	}
	req, err := spec.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	for _, level := range core.Levels() {
		src, err := Generate(spec, code, Options{Level: level})
		if err != nil {
			t.Fatalf("Generate(%v): %v", level, err)
		}
		t.Run(level.String(), func(t *testing.T) {
			compileGenerated(t, src)
		})
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, err := Generate(core.Spec{}, machinecode.New(), Options{}); err == nil {
		t.Error("Generate accepted empty spec")
	}
}

func TestGenerateMissingPairOptimized(t *testing.T) {
	spec, code := figure6Spec(t)
	code.Delete(machinecode.OutputMuxName(0, 0))
	if _, err := Generate(spec, code, Options{Level: core.SCCInlining}); err == nil {
		t.Error("Generate succeeded with missing output mux pair")
	}
}

func TestGenerateCustomPackage(t *testing.T) {
	spec, code := figure6Spec(t)
	src, err := Generate(spec, code, Options{Level: core.SCCInlining, Package: "mypipe"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package mypipe\n") {
		t.Error("custom package name not honoured")
	}
}

func TestGenerateStateDeclaration(t *testing.T) {
	spec := core.Spec{
		Depth:        2,
		Width:        1,
		StatelessALU: atoms.MustLoad("stateless_full"),
		StatefulALU:  atoms.MustLoad("pair"), // two state variables
	}
	req, _ := spec.RequiredPairs()
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	src, err := Generate(spec, code, Options{Level: core.SCCPropagation})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "{{0, 0}},\n") {
		t.Errorf("state declaration missing two-variable vector:\n%s", src)
	}
}
