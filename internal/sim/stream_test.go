package sim

import (
	"math/rand"
	"strings"
	"testing"

	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
)

// randomizedPipeline builds a depth×width pipeline with machine code drawn
// from rng (every bounded hole uniform over its domain, immediates small).
func randomizedPipeline(t *testing.T, depth, width int, statefulAtom string, rng *rand.Rand, level core.OptLevel) *core.Pipeline {
	t.Helper()
	return buildPipeline(t, depth, width, statefulAtom, func(s *core.Spec, code *machinecode.Program) {
		req, _ := s.RequiredPairs()
		for _, h := range req {
			if h.Domain > 0 {
				code.Set(h.Name, int64(rng.Intn(h.Domain)))
			} else {
				code.Set(h.Name, int64(rng.Intn(8)))
			}
		}
	}, level)
}

// TestStreamMatchesRun differentially tests the streaming engine against
// the recording Run over randomized pipelines at every level: same traffic,
// same outputs in order, same tick count, same final state.
func TestStreamMatchesRun(t *testing.T) {
	for _, level := range core.AllLevels() {
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(100*trial + 1)))
			pRun := randomizedPipeline(t, 3, 2, "pair", rng, level)
			rng = rand.New(rand.NewSource(int64(100*trial + 1)))
			pStream := randomizedPipeline(t, 3, 2, "pair", rng, level)

			g := NewTrafficGen(int64(trial), 2, phv.Default32, 1<<16)
			input := g.Trace(40)
			runRes, err := Run(pRun, input)
			if err != nil {
				t.Fatal(err)
			}

			stream := NewStream(pStream)
			got := phv.NewTrace()
			for fed := 0; fed < input.Len() || stream.InFlight() > 0; {
				var in []phv.Value
				if fed < input.Len() {
					in = input.At(fed).Raw()
					fed++
				}
				out, err := stream.Tick(in)
				if err != nil {
					t.Fatal(err)
				}
				if out != nil {
					got.Append(phv.FromValues(out))
				}
			}
			if d := runRes.Output.Diff(got); d != "" {
				t.Fatalf("%s trial %d: stream diverges from Run: %s", level, trial, d)
			}
			if stream.Ticks() != runRes.Ticks {
				t.Fatalf("%s trial %d: stream ticks %d, Run ticks %d", level, trial, stream.Ticks(), runRes.Ticks)
			}
			if !pStream.StateSnapshot().Equal(runRes.FinalState) {
				t.Fatalf("%s trial %d: final states diverge", level, trial)
			}
		}
	}
}

// TestFillMatchesNext: Fill and Next consume the generator stream
// identically, so streaming and trace-materializing consumers of one seed
// see the same traffic.
func TestFillMatchesNext(t *testing.T) {
	gTrace := NewTrafficGen(42, 3, phv.Default32, 1000)
	gFill := NewTrafficGen(42, 3, phv.Default32, 1000)
	buf := make([]phv.Value, 3)
	for i := 0; i < 100; i++ {
		want := gTrace.Next()
		gFill.Fill(buf)
		for c := 0; c < 3; c++ {
			if buf[c] != want.Get(c) {
				t.Fatalf("PHV %d container %d: Fill %d, Next %d", i, c, buf[c], want.Get(c))
			}
		}
	}
}

// brokenSpec diverges from the identity pipeline on every packet whose
// container 0 is even.
func brokenSpec() Spec {
	return &SpecFunc{SpecName: "half-wrong", Fn: func(in *phv.PHV) (*phv.PHV, error) {
		out := in.Clone()
		if out.Get(0)%2 == 0 {
			out.Set(0, out.Get(0)+1)
		}
		return out, nil
	}}
}

// TestFuzzGenMatchesFuzzBatch differentially tests the generator-driven
// streaming path against the trace-based FuzzBatch: identical Checked,
// Ticks and mismatch sets, on clean and on diverging runs.
func TestFuzzGenMatchesFuzzBatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() Spec
	}{
		{"clean", passThroughSpec},
		{"diverging", brokenSpec},
	} {
		p1 := buildPipeline(t, 3, 2, "pred_raw", nil, core.SCCInlining)
		p2 := buildPipeline(t, 3, 2, "pred_raw", nil, core.SCCInlining)
		const n = 300
		batch, err := FuzzBatch(p1, tc.spec(), NewTrafficGen(9, 2, phv.Default32, 1000).Trace(n), FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := FuzzGen(p2, tc.spec(), NewTrafficGen(9, 2, phv.Default32, 1000), n, FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Checked != streamed.Checked || batch.Ticks != streamed.Ticks {
			t.Fatalf("%s: batch (checked=%d ticks=%d) != streamed (checked=%d ticks=%d)",
				tc.name, batch.Checked, batch.Ticks, streamed.Checked, streamed.Ticks)
		}
		if len(batch.Mismatches) != len(streamed.Mismatches) {
			t.Fatalf("%s: %d vs %d mismatches", tc.name, len(batch.Mismatches), len(streamed.Mismatches))
		}
		for i := range batch.Mismatches {
			a, b := batch.Mismatches[i], streamed.Mismatches[i]
			if a.Index != b.Index || !a.Input.Equal(b.Input) || !a.Got.Equal(b.Got) || !a.Want.Equal(b.Want) {
				t.Fatalf("%s: mismatch %d differs: %s vs %s", tc.name, i, &a, &b)
			}
		}
		if tc.name == "clean" && !streamed.Passed() {
			t.Fatalf("clean run did not pass: %+v", streamed)
		}
		if tc.name == "diverging" && streamed.Passed() {
			t.Fatal("diverging run passed")
		}
	}
}

// TestFuzzCheckedCountsMismatch pins the count semantics: Checked counts
// every PHV compared including a mismatching one, and FailIndex addresses
// the mismatch, so a first-packet divergence reports Checked=1/FailIndex=0
// (sim.Fuzz used to report Checked=FailIndex, one short of FuzzBatch).
func TestFuzzCheckedCountsMismatch(t *testing.T) {
	// Identity pipeline vs +1 spec: every packet diverges, starting at 0.
	p := buildPipeline(t, 1, 1, "", nil, core.SCCInlining)
	spec := &SpecFunc{SpecName: "plus-one", Fn: func(in *phv.PHV) (*phv.PHV, error) {
		out := in.Clone()
		out.Set(0, out.Get(0)+1)
		return out, nil
	}}
	rep, err := FuzzRandom(p, spec, 2, 100, 0, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("fuzz passed, want mismatch")
	}
	if rep.FailIndex != 0 || rep.Checked != 1 {
		t.Errorf("FailIndex=%d Checked=%d, want FailIndex=0 Checked=1", rep.FailIndex, rep.Checked)
	}

	// The same input through FuzzBatch with a mismatch cap: Checked must
	// agree with the single-mismatch report (FailIndex+1).
	p2 := buildPipeline(t, 1, 1, "", nil, core.SCCInlining)
	batch, err := FuzzBatch(p2, spec, NewTrafficGen(2, 1, phv.Default32, 0).Trace(100), FuzzOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Mismatches) != 1 || batch.Checked != batch.Mismatches[0].Index+1 {
		t.Errorf("batch Checked=%d, want %d", batch.Checked, batch.Mismatches[0].Index+1)
	}
}

// TestStreamRuntimeFailureIsAFinding: the unchecked (BuildUnchecked) path
// still reports missing machine code pairs as findings through the
// streaming fuzzer, with the count of PHVs compared before the failure.
func TestStreamRuntimeFailureIsAFinding(t *testing.T) {
	s := core.Spec{Depth: 1, Width: 1, StatelessALU: atoms.MustLoad("stateless_full"), StatefulALU: atoms.MustLoad("raw")}
	req, err := s.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	code.Delete(machinecode.ALUHoleName(0, false, 0, "const_0"))
	p, err := core.BuildUnchecked(s, code)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FuzzGen(p, passThroughSpec(), NewTrafficGen(4, 1, phv.Default32, 0), 10, FuzzOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "missing machine code pair") {
		t.Fatalf("Err = %v, want missing-pair simulation failure", rep.Err)
	}
	if rep.Checked != 0 {
		t.Errorf("Checked = %d, want 0 (first packet never completed)", rep.Checked)
	}
}

// TestFuzzerReuse: one Fuzzer across many runs yields the same reports as
// fresh fuzzers (the campaign engine reuses one per worker per job).
func TestFuzzerReuse(t *testing.T) {
	p := buildPipeline(t, 2, 2, "pred_raw", nil, core.Compiled)
	f := NewFuzzer(p)
	for shard := 0; shard < 4; shard++ {
		gen := NewTrafficGen(int64(shard), 2, phv.Default32, 1000)
		reused, err := f.FuzzGen(passThroughSpec(), gen, 100, FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := FuzzGen(buildPipeline(t, 2, 2, "pred_raw", nil, core.Compiled), passThroughSpec(),
			NewTrafficGen(int64(shard), 2, phv.Default32, 1000), 100, FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if reused.Checked != fresh.Checked || reused.Ticks != fresh.Ticks || len(reused.Mismatches) != len(fresh.Mismatches) {
			t.Fatalf("shard %d: reused fuzzer diverges: %+v vs %+v", shard, reused, fresh)
		}
		if !reused.Passed() {
			t.Fatalf("shard %d failed: %+v", shard, reused)
		}
	}
}

// TestStreamSlotWindow: the completion slot keeps its PHV visible until the
// next tick (the debugger's slot snapshots rely on this).
func TestStreamSlotWindow(t *testing.T) {
	p := buildPipeline(t, 2, 1, "", nil, core.SCCInlining)
	stream := NewStream(p)
	in := []phv.Value{7}
	if out, err := stream.Tick(in); err != nil || out != nil {
		t.Fatalf("tick 0: out=%v err=%v", out, err)
	}
	out, err := stream.Tick(nil)
	if err != nil || out == nil {
		t.Fatalf("tick 1: out=%v err=%v", out, err)
	}
	if got := stream.Slot(stream.Depth()); got == nil || got[0] != 7 {
		t.Fatalf("completion slot = %v, want [7] visible until next tick", got)
	}
	if _, err := stream.Tick(nil); err != nil {
		t.Fatal(err)
	}
	if got := stream.Slot(stream.Depth()); got != nil {
		t.Fatalf("completion slot = %v after consuming tick, want empty", got)
	}
}
