// Package sim is dsim's RMT simulation component (§3.3 of the paper): it
// drives PHVs from a traffic generator through a pipeline description tick
// by tick, records input and output traces, and implements the fuzzing-based
// compiler-testing workflow of Fig. 5 (pipeline output trace vs. high-level
// specification output trace).
//
// Tick semantics follow the paper: a PHV is modelled in two halves. At every
// tick each occupied stage reads its PHV's read half and writes the result
// into the write half of the next stage's PHV; at the start of the next tick
// write halves become read halves. A PHV therefore traverses exactly one
// stage per tick.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"druzhba/internal/core"
	"druzhba/internal/phv"
)

// TrafficGen creates sequences of PHVs whose containers hold random unsigned
// integers (§3.3). It is deterministic for a given seed.
type TrafficGen struct {
	rng    *rand.Rand
	phvLen int
	max    int64
}

// NewTrafficGen returns a generator producing PHVs with phvLen containers of
// values uniform in [0, max). max <= 0 means the full value range of bits.
func NewTrafficGen(seed int64, phvLen int, bits phv.Width, max int64) *TrafficGen {
	if max <= 0 {
		max = bits.Mask() + 1
	}
	return &TrafficGen{rng: rand.New(rand.NewSource(seed)), phvLen: phvLen, max: max}
}

// Next generates one PHV.
func (g *TrafficGen) Next() *phv.PHV {
	p := phv.New(g.phvLen)
	for i := 0; i < g.phvLen; i++ {
		p.Set(i, g.rng.Int63n(g.max))
	}
	return p
}

// Trace generates a trace of n PHVs.
func (g *TrafficGen) Trace(n int) *phv.Trace {
	t := phv.NewTrace()
	for i := 0; i < n; i++ {
		t.Append(g.Next())
	}
	return t
}

// RunOptions configures a simulation run.
type RunOptions struct {
	// RecordStates captures a state snapshot after every tick, enabling the
	// time-travel inspection of pipeline state (§7's debugger direction).
	RecordStates bool

	// RecordSlots captures, after every tick, the PHV occupying each
	// pipeline slot (slot i holds the PHV about to execute stage i; slot
	// Depth is the completion slot). Used by the time-travel debugger.
	RecordSlots bool
}

// Result is the outcome of one simulation run.
type Result struct {
	Input      *phv.Trace
	Output     *phv.Trace
	FinalState phv.StateSnapshot
	Ticks      int

	// StateHistory[t] is the snapshot after tick t (only when
	// RunOptions.RecordStates was set).
	StateHistory []phv.StateSnapshot

	// SlotHistory[t][i] is the PHV waiting in slot i after tick t, or nil
	// when the slot is empty (only when RunOptions.RecordSlots was set).
	SlotHistory [][][]phv.Value
}

// Run simulates the pipeline over the input trace tick by tick and returns
// the output trace ("an output trace shows the modified PHVs and the state
// vectors", §3.3). The input trace is not modified.
func Run(p *core.Pipeline, input *phv.Trace) (*Result, error) {
	return RunOpts(p, input, RunOptions{})
}

// RunOpts is Run with options.
func RunOpts(p *core.Pipeline, input *phv.Trace, opts RunOptions) (*Result, error) {
	depth := p.Depth()
	phvLen := p.PHVLen()
	res := &Result{Input: input, Output: phv.NewTrace()}

	// slots[i] is the read half of the PHV waiting to be executed by stage
	// i this tick; slots[depth] receives completed PHVs.
	slots := make([][]phv.Value, depth+1)
	nextIn := 0
	occupied := 0

	for tick := 0; nextIn < input.Len() || occupied > 0; tick++ {
		// Admit one PHV into the first pipeline stage per tick.
		if nextIn < input.Len() {
			if input.At(nextIn).Len() != phvLen {
				return nil, fmt.Errorf("sim: input PHV %d has %d containers, pipeline expects %d", nextIn, input.At(nextIn).Len(), phvLen)
			}
			slots[0] = input.At(nextIn).Values()
			nextIn++
			occupied++
		}
		// Execute stages back to front so every PHV advances exactly one
		// stage: the write half of tick t becomes the read half of t+1.
		for si := depth - 1; si >= 0; si-- {
			if slots[si] == nil {
				continue
			}
			out := make([]phv.Value, phvLen)
			if err := p.ExecuteStage(si, slots[si], out); err != nil {
				return nil, fmt.Errorf("sim: tick %d: %w", tick, err)
			}
			slots[si] = nil
			slots[si+1] = out
		}
		if opts.RecordSlots {
			snap := make([][]phv.Value, depth+1)
			for i, s := range slots {
				if s != nil {
					snap[i] = append([]phv.Value(nil), s...)
				}
			}
			res.SlotHistory = append(res.SlotHistory, snap)
		}
		if slots[depth] != nil {
			res.Output.Append(phv.FromValues(slots[depth]))
			slots[depth] = nil
			occupied--
		}
		res.Ticks = tick + 1
		if opts.RecordStates {
			res.StateHistory = append(res.StateHistory, p.StateSnapshot())
		}
	}
	res.FinalState = p.StateSnapshot()
	return res, nil
}

// Spec is a high-level specification "capturing the intended algorithmic
// behavior on both PHVs and state values" (§3.3). A Spec consumes input PHVs
// in order and produces the expected output PHVs; it may keep internal state
// across calls.
type Spec interface {
	// Name identifies the specification in reports.
	Name() string
	// Process returns the expected output PHV for the next input PHV.
	Process(in *phv.PHV) (*phv.PHV, error)
	// Reset clears all internal state.
	Reset()
}

// SpecFunc adapts a stateless transformation function to the Spec interface.
type SpecFunc struct {
	SpecName string
	Fn       func(in *phv.PHV) (*phv.PHV, error)
}

// Name implements Spec.
func (s *SpecFunc) Name() string { return s.SpecName }

// Process implements Spec.
func (s *SpecFunc) Process(in *phv.PHV) (*phv.PHV, error) { return s.Fn(in) }

// Reset implements Spec.
func (s *SpecFunc) Reset() {}

// RunSpec runs a specification over an input trace, producing its expected
// output trace.
func RunSpec(s Spec, input *phv.Trace) (*phv.Trace, error) {
	s.Reset()
	out := phv.NewTrace()
	for i := 0; i < input.Len(); i++ {
		o, err := s.Process(input.At(i).Clone())
		if err != nil {
			return nil, fmt.Errorf("sim: spec %q, PHV %d: %w", s.Name(), i, err)
		}
		out.Append(o)
	}
	return out, nil
}

// FuzzOptions configures equivalence fuzzing.
type FuzzOptions struct {
	// Containers restricts the comparison to these container indices
	// (nil compares every container).
	Containers []int
}

// FuzzReport is the outcome of one fuzzing session.
type FuzzReport struct {
	SpecName string
	Checked  int  // PHVs compared
	Passed   bool // true when every PHV matched

	// On failure:
	FailIndex int      // index of the first mismatching PHV (-1 if none)
	Input     *phv.PHV // the mismatching input
	Got       *phv.PHV // pipeline output
	Want      *phv.PHV // spec output
	Err       error    // non-nil when simulation itself failed
}

// String renders the report for humans.
func (r *FuzzReport) String() string {
	if r.Passed {
		return fmt.Sprintf("PASS: %s: %d PHVs match", r.SpecName, r.Checked)
	}
	if r.Err != nil {
		return fmt.Sprintf("FAIL: %s: simulation error after %d PHVs: %v", r.SpecName, r.Checked, r.Err)
	}
	return fmt.Sprintf("FAIL: %s: PHV %d: input %s: pipeline %s, spec %s",
		r.SpecName, r.FailIndex, r.Input, r.Got, r.Want)
}

// Fuzz implements the compiler-testing workflow of Fig. 5: the input trace
// is fed both to the pipeline and to the specification, and the two output
// traces are compared. The pipeline's state is reset first. A non-nil error
// is returned only for harness misuse; simulation failures (e.g. machine
// code incompatible with the pipeline) are reported in FuzzReport.Err, since
// they are test findings (§5.2's first failure class).
func Fuzz(p *core.Pipeline, spec Spec, input *phv.Trace, opts FuzzOptions) (*FuzzReport, error) {
	batch, err := FuzzBatch(p, spec, input, opts, 1)
	if err != nil {
		return nil, err
	}
	report := &FuzzReport{SpecName: batch.SpecName, FailIndex: -1, Err: batch.Err}
	if report.Err != nil {
		return report, nil
	}
	if len(batch.Mismatches) > 0 {
		m := batch.Mismatches[0]
		report.Checked = m.Index
		report.FailIndex = m.Index
		report.Input = m.Input
		report.Got = m.Got
		report.Want = m.Want
		return report, nil
	}
	report.Checked = batch.Checked
	report.Passed = true
	return report, nil
}

// Mismatch is one diverging PHV found by FuzzBatch: the pipeline and the
// specification disagreed on the trace entry at Index.
type Mismatch struct {
	Index int      // position in the input trace
	Input *phv.PHV // the diverging input
	Got   *phv.PHV // pipeline output
	Want  *phv.PHV // spec output
}

// String renders the mismatch for humans.
func (m *Mismatch) String() string {
	return fmt.Sprintf("PHV %d: input %s: pipeline %s, spec %s", m.Index, m.Input, m.Got, m.Want)
}

// BatchReport is the outcome of FuzzBatch: the whole-trace variant of
// FuzzReport consumed by the campaign engine, which keeps scanning past the
// first divergence so counterexamples can be aggregated and deduplicated
// across shards.
type BatchReport struct {
	SpecName   string
	Checked    int // PHVs compared (the full trace unless simulation failed)
	Ticks      int // pipeline ticks consumed by the run
	Mismatches []Mismatch
	Err        error // non-nil when simulation itself failed
}

// Passed reports whether the batch found no divergence and no error.
func (r *BatchReport) Passed() bool { return r.Err == nil && len(r.Mismatches) == 0 }

// FuzzBatch runs the Fig. 5 comparison over the full input trace, collecting
// up to maxMismatches diverging PHVs (0 = unbounded) instead of stopping at
// the first. The pipeline's state is reset first. Like Fuzz, simulation
// failures are findings (BatchReport.Err), not harness errors.
func FuzzBatch(p *core.Pipeline, spec Spec, input *phv.Trace, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	if input.Len() == 0 {
		return nil, errors.New("sim: empty input trace")
	}
	report := &BatchReport{SpecName: spec.Name()}
	p.ResetState()
	simRes, err := Run(p, input)
	if err != nil {
		report.Err = err
		return report, nil
	}
	report.Ticks = simRes.Ticks
	specOut, err := RunSpec(spec, input)
	if err != nil {
		return nil, err
	}
	if simRes.Output.Len() != specOut.Len() {
		report.Err = fmt.Errorf("output trace lengths differ: pipeline %d, spec %d", simRes.Output.Len(), specOut.Len())
		return report, nil
	}
	for i := 0; i < input.Len(); i++ {
		got, want := simRes.Output.At(i), specOut.At(i)
		if !equalOn(got, want, opts.Containers) {
			report.Mismatches = append(report.Mismatches, Mismatch{
				Index: i,
				Input: input.At(i).Clone(),
				Got:   got.Clone(),
				Want:  want.Clone(),
			})
			if maxMismatches > 0 && len(report.Mismatches) >= maxMismatches {
				report.Checked = i + 1
				return report, nil
			}
		}
	}
	report.Checked = input.Len()
	return report, nil
}

// FuzzRandom drives Fuzz with n PHVs from a fresh traffic generator.
func FuzzRandom(p *core.Pipeline, spec Spec, seed int64, n int, maxValue int64, opts FuzzOptions) (*FuzzReport, error) {
	gen := NewTrafficGen(seed, p.PHVLen(), p.Bits(), maxValue)
	return Fuzz(p, spec, gen.Trace(n), opts)
}

func equalOn(a, b *phv.PHV, containers []int) bool {
	if containers == nil {
		return a.Equal(b)
	}
	for _, c := range containers {
		if a.Get(c) != b.Get(c) {
			return false
		}
	}
	return true
}
