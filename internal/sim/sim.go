// Package sim is dsim's RMT simulation component (§3.3 of the paper): it
// drives PHVs from a traffic generator through a pipeline description tick
// by tick and implements the fuzzing-based compiler-testing workflow of
// Fig. 5 (pipeline output trace vs. high-level specification output trace).
//
// Tick semantics follow the paper: a PHV is modelled in two halves. At every
// tick each occupied stage reads its PHV's read half and writes the result
// into the write half of the next stage's PHV; at the start of the next tick
// write halves become read halves. A PHV therefore traverses exactly one
// stage per tick.
//
// The package offers two execution modes over the same tick loop:
//
//   - streaming (Stream, Fuzzer, FuzzGen): a preallocated ring of depth+1
//     slot buffers is reused across ticks, traffic is generated directly
//     into caller-owned buffers (TrafficGen.Fill) and outputs are compared
//     in lock step, so a clean fuzzing shard performs O(1) allocation total
//     regardless of packet count. This is the campaign engine's hot path.
//   - recording (Run, RunOpts): input and output traces, and optionally
//     per-tick state and slot snapshots, are materialized for callers that
//     need them — the time-travel debugger and the trace-diffing tools.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"druzhba/internal/core"
	"druzhba/internal/phv"
)

// TrafficMode selects the distribution a traffic generator draws container
// values from.
type TrafficMode string

const (
	// TrafficUniform draws every value uniformly from [0, max) — the
	// paper's §3.3 regime and the zero value of the type.
	TrafficUniform TrafficMode = "uniform"

	// TrafficBoundary draws every value from the boundary set of the draw
	// range: zero, the minimal nonzero value, and the maximal drawable
	// value (which is the all-ones pattern at full datapath width). ALU
	// carry, wrap-around and comparison edges live at exactly these
	// values, so boundary traffic is the adversarial counterpart of the
	// uniform regime.
	TrafficBoundary TrafficMode = "boundary"
)

// Valid reports whether m names a known traffic mode; the empty string
// counts as TrafficUniform.
func (m TrafficMode) Valid() bool {
	return m == "" || m == TrafficUniform || m == TrafficBoundary
}

// TrafficGen creates sequences of PHVs whose containers hold random unsigned
// integers (§3.3). It is deterministic for a given seed.
type TrafficGen struct {
	rng    *rand.Rand
	phvLen int
	max    int64
	bounds []phv.Value // non-nil in boundary mode: the candidate values

	corpus [][]phv.Value // seed packets served before random draws
	next   int           // corpus cursor
}

// NewTrafficGen returns a generator producing PHVs with phvLen containers of
// values uniform in [0, max). max <= 0 means the full value range of bits.
func NewTrafficGen(seed int64, phvLen int, bits phv.Width, max int64) *TrafficGen {
	g, _ := NewTrafficGenMode(seed, phvLen, bits, max, TrafficUniform)
	return g
}

// NewTrafficGenMode is NewTrafficGen with an explicit traffic mode. Both
// modes draw exactly one random number per container, so a given mode is
// deterministic for a given seed across Fill, Next and Trace.
func NewTrafficGenMode(seed int64, phvLen int, bits phv.Width, max int64, mode TrafficMode) (*TrafficGen, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("sim: unknown traffic mode %q (want %s or %s)", mode, TrafficUniform, TrafficBoundary)
	}
	if max <= 0 {
		max = bits.Mask() + 1
	}
	g := &TrafficGen{rng: rand.New(rand.NewSource(seed)), phvLen: phvLen, max: max}
	if mode == TrafficBoundary {
		g.bounds = boundaryValues(max)
	}
	return g, nil
}

// boundaryValues is the deduplicated boundary set of the draw range
// [0, limit): zero, one and limit-1 (the all-ones pattern when the limit is
// a full power-of-two width).
func boundaryValues(limit int64) []phv.Value {
	set := []phv.Value{0}
	for _, v := range []int64{1, limit - 1} {
		if v > 0 && v < limit && v != set[len(set)-1] {
			set = append(set, v)
		}
	}
	return set
}

// SeedCorpus installs concrete seed packets that Fill serves, in order,
// before any random draw — the feedback path that turns verification
// counterexample traces into deterministic fuzzer regression traffic. The
// entries are not copied; callers must not mutate them afterwards. A
// corpus-served packet consumes no random numbers, so generators with the
// same seed and the same corpus produce identical streams.
func (g *TrafficGen) SeedCorpus(entries [][]phv.Value) {
	g.corpus = entries
	g.next = 0
}

// Fill writes one PHV's container values into the caller-owned dst buffer.
// While seed-corpus entries remain it copies the next entry (zero-padding
// or truncating on length mismatch); afterwards it draws exactly len(dst)
// values from the generator's stream, so streaming and trace-materializing
// consumers of the same seed see the same traffic.
func (g *TrafficGen) Fill(dst []phv.Value) {
	if g.next < len(g.corpus) {
		n := copy(dst, g.corpus[g.next])
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
		g.next++
		return
	}
	if g.bounds != nil {
		for i := range dst {
			dst[i] = g.bounds[g.rng.Intn(len(g.bounds))]
		}
		return
	}
	for i := range dst {
		dst[i] = g.rng.Int63n(g.max)
	}
}

// Next generates one PHV.
func (g *TrafficGen) Next() *phv.PHV {
	p := phv.New(g.phvLen)
	g.Fill(p.Raw())
	return p
}

// Trace generates a trace of n PHVs.
func (g *TrafficGen) Trace(n int) *phv.Trace {
	t := phv.NewTrace()
	for i := 0; i < n; i++ {
		t.Append(g.Next())
	}
	return t
}

// Stream is the allocation-free tick-level simulation engine: a ring of
// depth+1 slot buffers, preallocated once and reused across ticks. Slot i
// holds the read half of the PHV about to execute stage i; slot Depth is
// the completion slot. Admission copies into slot 0, stages execute back to
// front so every PHV advances exactly one stage per tick, and a completed
// PHV surfaces as a buffer owned by the Stream.
//
// For pipelines whose mux selections were validated at build time
// (core.Pipeline.Prechecked) the stage loop uses the prechecked fast path,
// which carries no map lookups, no per-ALU error returns and no bounds
// re-validation. A Stream is not safe for concurrent use.
type Stream struct {
	p        *core.Pipeline
	depth    int
	phvLen   int
	fast     bool
	slots    [][]phv.Value // slots[i]: PHV waiting to execute stage i
	occ      []bool
	inFlight int
	ticks    int
}

// NewStream returns a streaming engine over the pipeline. The ring is the
// only allocation; every subsequent Tick is allocation-free.
func NewStream(p *core.Pipeline) *Stream {
	depth, phvLen := p.Depth(), p.PHVLen()
	s := &Stream{p: p, depth: depth, phvLen: phvLen, fast: p.Prechecked()}
	backing := make([]phv.Value, (depth+1)*phvLen)
	s.slots = make([][]phv.Value, depth+1)
	for i := range s.slots {
		s.slots[i] = backing[i*phvLen : (i+1)*phvLen : (i+1)*phvLen]
	}
	s.occ = make([]bool, depth+1)
	return s
}

// Depth returns the pipeline depth (the completion slot index).
func (s *Stream) Depth() int { return s.depth }

// PHVLen returns the container count of every slot buffer.
func (s *Stream) PHVLen() int { return s.phvLen }

// Ticks returns the number of completed ticks since the last Reset.
func (s *Stream) Ticks() int { return s.ticks }

// InFlight returns the number of admitted PHVs that have not yet completed.
func (s *Stream) InFlight() int { return s.inFlight }

// Slot returns the values occupying pipeline slot i (slot Depth is the
// completion slot), or nil when the slot is empty. The slice is owned by
// the Stream and valid until the next Tick or Reset; the debugger's
// per-tick snapshots are built from it.
func (s *Stream) Slot(i int) []phv.Value {
	if !s.occ[i] {
		return nil
	}
	return s.slots[i]
}

// Reset empties every slot and zeroes the tick counter. Pipeline state is
// left alone; use core.Pipeline.ResetState for that.
func (s *Stream) Reset() {
	for i := range s.occ {
		s.occ[i] = false
	}
	s.inFlight = 0
	s.ticks = 0
}

// Tick advances the pipeline one tick. A non-nil in is admitted into stage
// 0 (copied, so the caller keeps ownership; len(in) must be PHVLen). When a
// PHV completes this tick its container values are returned in a buffer
// owned by the Stream, valid until the next Tick or Reset; a nil result
// means no PHV completed. Execution errors (possible only on pipelines for
// which Prechecked is false) abort the tick.
//
//dvet:hotpath allocs=0
func (s *Stream) Tick(in []phv.Value) ([]phv.Value, error) {
	// The completion slot is consumed at the start of the next tick, not at
	// the end of the tick it surfaced, so snapshots taken between ticks
	// still see the completed PHV (the debugger relies on this).
	s.occ[s.depth] = false
	if in != nil {
		if len(in) != s.phvLen {
			//dvet:alloc-ok harness-misuse error path, never taken in a clean run
			return nil, fmt.Errorf("sim: input PHV has %d containers, pipeline expects %d", len(in), s.phvLen)
		}
		copy(s.slots[0], in)
		s.occ[0] = true
		s.inFlight++
	}
	if s.fast {
		if err := s.tickFast(); err != nil {
			return nil, err
		}
	} else {
		for si := s.depth - 1; si >= 0; si-- {
			if !s.occ[si] {
				continue
			}
			if err := s.p.ExecuteStage(si, s.slots[si], s.slots[si+1]); err != nil {
				return nil, err
			}
			s.occ[si] = false
			s.occ[si+1] = true
		}
	}
	s.ticks++
	if s.occ[s.depth] {
		s.inFlight--
		return s.slots[s.depth], nil
	}
	return nil, nil
}

// tickFast runs the back-to-front stage sweep on the prechecked path. One
// recover guards the whole sweep, converting the (build-time impossible,
// interpreter-guarded) evaluation panics back into the error ExecuteStage
// would have returned.
//
//dvet:hotpath allocs=0
func (s *Stream) tickFast() (err error) {
	//dvet:alloc-ok non-escaping recover closure; the zero-alloc tests pin it to the stack
	defer func() {
		if r := recover(); r != nil {
			if e, ok := core.AsExecError(r); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	for si := s.depth - 1; si >= 0; si-- {
		if !s.occ[si] {
			continue
		}
		s.p.ExecuteStageFast(si, s.slots[si], s.slots[si+1])
		s.occ[si] = false
		s.occ[si+1] = true
	}
	return nil
}

// RunOptions configures a recording simulation run.
type RunOptions struct {
	// RecordStates captures a state snapshot after every tick, enabling the
	// time-travel inspection of pipeline state (§7's debugger direction).
	RecordStates bool

	// RecordSlots captures, after every tick, the PHV occupying each
	// pipeline slot (slot i holds the PHV about to execute stage i; slot
	// Depth is the completion slot). Used by the time-travel debugger.
	RecordSlots bool
}

// Result is the outcome of one recording simulation run.
type Result struct {
	Input      *phv.Trace
	Output     *phv.Trace
	FinalState phv.StateSnapshot
	Ticks      int

	// StateHistory[t] is the snapshot after tick t (only when
	// RunOptions.RecordStates was set).
	StateHistory []phv.StateSnapshot

	// SlotHistory[t][i] is the PHV waiting in slot i after tick t, or nil
	// when the slot is empty (only when RunOptions.RecordSlots was set).
	SlotHistory [][][]phv.Value
}

// Run simulates the pipeline over the input trace tick by tick and returns
// the output trace ("an output trace shows the modified PHVs and the state
// vectors", §3.3). The input trace is not modified. Run materializes the
// full output trace; hot paths that only compare outputs should use the
// streaming Fuzzer instead.
func Run(p *core.Pipeline, input *phv.Trace) (*Result, error) {
	return RunOpts(p, input, RunOptions{})
}

// RunOpts is Run with options.
func RunOpts(p *core.Pipeline, input *phv.Trace, opts RunOptions) (*Result, error) {
	phvLen := p.PHVLen()
	res := &Result{Input: input, Output: phv.NewTrace()}
	st := NewStream(p)
	for next := 0; next < input.Len() || st.InFlight() > 0; {
		// Admit one PHV into the first pipeline stage per tick.
		var in []phv.Value
		if next < input.Len() {
			if input.At(next).Len() != phvLen {
				return nil, fmt.Errorf("sim: input PHV %d has %d containers, pipeline expects %d", next, input.At(next).Len(), phvLen)
			}
			in = input.At(next).Raw()
			next++
		}
		out, err := st.Tick(in)
		if err != nil {
			return nil, fmt.Errorf("sim: tick %d: %w", st.Ticks(), err)
		}
		if opts.RecordSlots {
			snap := make([][]phv.Value, st.Depth()+1)
			for i := range snap {
				if s := st.Slot(i); s != nil {
					snap[i] = append([]phv.Value(nil), s...)
				}
			}
			res.SlotHistory = append(res.SlotHistory, snap)
		}
		if out != nil {
			res.Output.Append(phv.FromValues(out))
		}
		res.Ticks = st.Ticks()
		if opts.RecordStates {
			res.StateHistory = append(res.StateHistory, p.StateSnapshot())
		}
	}
	res.FinalState = p.StateSnapshot()
	return res, nil
}

// Spec is a high-level specification "capturing the intended algorithmic
// behavior on both PHVs and state values" (§3.3). A Spec consumes input PHVs
// in order and produces the expected output PHVs; it may keep internal state
// across calls.
type Spec interface {
	// Name identifies the specification in reports.
	Name() string
	// Process returns the expected output PHV for the next input PHV.
	Process(in *phv.PHV) (*phv.PHV, error)
	// Reset clears all internal state.
	Reset()
}

// StreamSpec is an optional extension of Spec for specifications that can
// process a packet's container values in place, without allocating. The
// streaming Fuzzer uses it to keep clean shards allocation-free; plain
// Specs fall back to Process on a reusable wrapper PHV (correct, but the
// Process implementation usually allocates its output).
type StreamSpec interface {
	Spec
	// ProcessStream overwrites vals with the expected output values for
	// the next input PHV. It must not retain vals across calls.
	ProcessStream(vals []phv.Value) error
}

// SpecFunc adapts a stateless transformation function to the Spec interface.
type SpecFunc struct {
	SpecName string
	Fn       func(in *phv.PHV) (*phv.PHV, error)
}

// Name implements Spec.
func (s *SpecFunc) Name() string { return s.SpecName }

// Process implements Spec.
func (s *SpecFunc) Process(in *phv.PHV) (*phv.PHV, error) { return s.Fn(in) }

// Reset implements Spec.
func (s *SpecFunc) Reset() {}

// RunSpec runs a specification over an input trace, producing its expected
// output trace.
func RunSpec(s Spec, input *phv.Trace) (*phv.Trace, error) {
	s.Reset()
	out := phv.NewTrace()
	for i := 0; i < input.Len(); i++ {
		o, err := s.Process(input.At(i).Clone())
		if err != nil {
			return nil, fmt.Errorf("sim: spec %q, PHV %d: %w", s.Name(), i, err)
		}
		out.Append(o)
	}
	return out, nil
}

// FuzzOptions configures equivalence fuzzing.
type FuzzOptions struct {
	// Containers restricts the comparison to these container indices
	// (nil compares every container).
	Containers []int
}

// FuzzReport is the outcome of one fuzzing session.
type FuzzReport struct {
	SpecName string
	Checked  int  // PHVs compared (including a mismatching one)
	Passed   bool // true when every PHV matched

	// On failure:
	FailIndex int      // index of the first mismatching PHV (-1 if none)
	Input     *phv.PHV // the mismatching input
	Got       *phv.PHV // pipeline output
	Want      *phv.PHV // spec output
	Err       error    // non-nil when simulation itself failed
}

// String renders the report for humans.
func (r *FuzzReport) String() string {
	if r.Passed {
		return fmt.Sprintf("PASS: %s: %d PHVs match", r.SpecName, r.Checked)
	}
	if r.Err != nil {
		return fmt.Sprintf("FAIL: %s: simulation error after %d PHVs: %v", r.SpecName, r.Checked, r.Err)
	}
	return fmt.Sprintf("FAIL: %s: PHV %d: input %s: pipeline %s, spec %s",
		r.SpecName, r.FailIndex, r.Input, r.Got, r.Want)
}

// Fuzz implements the compiler-testing workflow of Fig. 5: the input trace
// is fed both to the pipeline and to the specification, and the two output
// traces are compared. The pipeline's state is reset first. A non-nil error
// is returned only for harness misuse; simulation failures (e.g. machine
// code incompatible with the pipeline) are reported in FuzzReport.Err, since
// they are test findings (§5.2's first failure class).
func Fuzz(p *core.Pipeline, spec Spec, input *phv.Trace, opts FuzzOptions) (*FuzzReport, error) {
	batch, err := FuzzBatch(p, spec, input, opts, 1)
	if err != nil {
		return nil, err
	}
	return fuzzReportOf(batch), nil
}

// fuzzReportOf condenses a BatchReport into the single-mismatch FuzzReport.
// Checked counts every PHV compared, including a mismatching one (so a
// first-packet mismatch reports Checked=1, FailIndex=0).
func fuzzReportOf(batch *BatchReport) *FuzzReport {
	report := &FuzzReport{SpecName: batch.SpecName, Checked: batch.Checked, FailIndex: -1, Err: batch.Err}
	if report.Err != nil {
		return report
	}
	if len(batch.Mismatches) > 0 {
		m := batch.Mismatches[0]
		report.Checked = m.Index + 1
		report.FailIndex = m.Index
		report.Input = m.Input
		report.Got = m.Got
		report.Want = m.Want
		return report
	}
	report.Passed = true
	return report
}

// Mismatch is one diverging PHV found by the fuzzer: the pipeline and the
// specification disagreed on the trace entry at Index.
type Mismatch struct {
	Index int      // position in the input trace
	Input *phv.PHV // the diverging input
	Got   *phv.PHV // pipeline output
	Want  *phv.PHV // spec output
}

// String renders the mismatch for humans.
func (m *Mismatch) String() string {
	return fmt.Sprintf("PHV %d: input %s: pipeline %s, spec %s", m.Index, m.Input, m.Got, m.Want)
}

// BatchReport is the outcome of a whole-stream fuzzing comparison: the
// multi-mismatch variant of FuzzReport consumed by the campaign engine,
// which keeps scanning past the first divergence so counterexamples can be
// aggregated and deduplicated across shards.
type BatchReport struct {
	SpecName   string
	Checked    int // PHVs compared (the full stream unless simulation failed)
	Ticks      int // pipeline ticks consumed by the run
	Mismatches []Mismatch
	Err        error // non-nil when simulation itself failed
}

// Passed reports whether the batch found no divergence and no error.
func (r *BatchReport) Passed() bool { return r.Err == nil && len(r.Mismatches) == 0 }

// Fuzzer runs the Fig. 5 comparison as a lock-step stream over reusable
// buffers: packet i is generated into a ring slot and, on the tick of its
// admission, processed by the specification; the expected output then waits
// in the ring until the pipeline's output for packet i emerges depth-1
// ticks later and the two are compared. PHVs are cloned only for
// mismatches, so a clean run performs O(1) allocation total — for
// StreamSpec specifications, zero steady-state allocations per PHV.
//
// A Fuzzer is bound to one pipeline and reusable across runs (the campaign
// engine keeps one per worker per job). It is not safe for concurrent use.
type Fuzzer struct {
	pipe   *core.Pipeline
	stream *Stream
	win    int           // ring window: depth+1 in-flight packets
	inputs [][]phv.Value // input i lives at slot i%win until compared
	want   [][]phv.Value // expected output i, same slot discipline
	specIn *phv.PHV      // reusable wrapper for non-streaming specs

	// Batched mode (SetBatch): the plane engine and its scratch rows,
	// allocated lazily on the first batched run and reused afterwards.
	batchSize int           // 0 = streaming
	batch     *Batch        // column-major execution planes
	wantRows  [][]phv.Value // expected output k of the current batch
	fillRow   []phv.Value   // row scratch for generation and replay
	gatherRow []phv.Value   // row scratch for column gathers
	stateBuf  []phv.Value   // pre-batch state checkpoint for panic replay
}

// NewFuzzer returns a streaming fuzzer over the pipeline. The ring buffers
// are the only allocations; they are reused by every subsequent Fuzz run.
func NewFuzzer(p *core.Pipeline) *Fuzzer {
	f := &Fuzzer{pipe: p, stream: NewStream(p), win: p.Depth() + 1}
	phvLen := p.PHVLen()
	backing := make([]phv.Value, 2*f.win*phvLen)
	f.inputs = make([][]phv.Value, f.win)
	f.want = make([][]phv.Value, f.win)
	for i := 0; i < f.win; i++ {
		f.inputs[i] = backing[i*phvLen : (i+1)*phvLen : (i+1)*phvLen]
		// want slots start empty; they are refilled by append so a spec
		// returning a wrong-length PHV is caught by the comparison.
		base := (f.win + i) * phvLen
		f.want[i] = backing[base : base : base+phvLen]
	}
	f.specIn = phv.New(phvLen)
	return f
}

// Pipeline returns the pipeline the fuzzer is bound to.
func (f *Fuzzer) Pipeline() *core.Pipeline { return f.pipe }

// FuzzGen runs the streaming comparison over n PHVs drawn from gen.
//
//dvet:hotpath allocs=3
func (f *Fuzzer) FuzzGen(spec Spec, gen *TrafficGen, n int, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	//dvet:alloc-ok generator adapter closure, allocated once per run, not per PHV
	return f.Fuzz(spec, n, func(dst []phv.Value) error {
		gen.Fill(dst)
		return nil
	}, opts, maxMismatches)
}

// Fuzz runs the lock-step comparison over n input PHVs produced by next,
// which must fill the PHVLen-sized buffer it is handed (an error from next
// is recorded as a simulation finding, like a malformed trace entry).
// Collection stops after maxMismatches diverging PHVs (0 = unbounded). The
// pipeline's state, the stream and the specification are reset first. Like
// Fuzz, simulation failures land in BatchReport.Err; only harness misuse
// returns a non-nil error.
//
//dvet:hotpath allocs=3
func (f *Fuzzer) Fuzz(spec Spec, n int, next func(dst []phv.Value) error, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	if n <= 0 {
		return nil, errors.New("sim: empty input trace")
	}
	if f.batchSize > 0 && f.pipe.Prechecked() {
		// Batched mode produces byte-identical reports on the plane engine;
		// unoptimized pipelines fall through to the streaming tick loop.
		return f.fuzzBatched(spec, n, next, opts, maxMismatches)
	}
	report := &BatchReport{SpecName: spec.Name()} //dvet:alloc-ok one report per run, not per PHV
	f.pipe.ResetState()
	f.stream.Reset()
	spec.Reset()
	ss, streaming := spec.(StreamSpec)
	fed, compared := 0, 0
	//dvet:alloc-ok per-run epilogue closure, not per PHV
	finish := func() *BatchReport {
		report.Checked = compared
		report.Ticks = f.stream.Ticks()
		return report
	}
	for fed < n || f.stream.InFlight() > 0 {
		var in []phv.Value
		if fed < n {
			slot := fed % f.win
			in = f.inputs[slot]
			if err := next(in); err != nil {
				report.Err = err
				return finish(), nil
			}
			// Lock step: the spec consumes packet i on the tick of its
			// admission, so spec state advances in packet order.
			if streaming {
				f.want[slot] = append(f.want[slot][:0], in...) //dvet:alloc-ok append into the ring's cap-pinned backing, never grows
				if err := ss.ProcessStream(f.want[slot]); err != nil {
					return nil, fmt.Errorf("sim: spec %q, PHV %d: %w", spec.Name(), fed, err) //dvet:alloc-ok spec-failure error path
				}
			} else {
				copy(f.specIn.Raw(), in)
				out, err := spec.Process(f.specIn)
				if err != nil {
					return nil, fmt.Errorf("sim: spec %q, PHV %d: %w", spec.Name(), fed, err) //dvet:alloc-ok spec-failure error path
				}
				f.want[slot] = append(f.want[slot][:0], out.Raw()...) //dvet:alloc-ok append into the ring's cap-pinned backing, never grows
			}
			fed++
		}
		out, err := f.stream.Tick(in)
		if err != nil {
			report.Err = fmt.Errorf("sim: tick %d: %w", f.stream.Ticks(), err) //dvet:alloc-ok finding path, at most once per run
			return finish(), nil
		}
		if out == nil {
			continue
		}
		slot := compared % f.win
		if !equalVals(out, f.want[slot], opts.Containers) {
			//dvet:alloc-ok mismatch collection is the cold path; clean runs never reach it
			report.Mismatches = append(report.Mismatches, Mismatch{
				Index: compared,
				Input: phv.FromValues(f.inputs[slot]),
				Got:   phv.FromValues(out),
				Want:  phv.FromValues(f.want[slot]),
			})
			if maxMismatches > 0 && len(report.Mismatches) >= maxMismatches {
				compared++
				return finish(), nil
			}
		}
		compared++
	}
	return finish(), nil
}

// FuzzBatch runs the Fig. 5 comparison over the full input trace, collecting
// up to maxMismatches diverging PHVs (0 = unbounded) instead of stopping at
// the first. The pipeline's state is reset first. Like Fuzz, simulation
// failures are findings (BatchReport.Err), not harness errors. FuzzBatch
// streams the trace through a fresh Fuzzer; callers that run many batches
// over one pipeline should hold a Fuzzer and feed it directly.
func FuzzBatch(p *core.Pipeline, spec Spec, input *phv.Trace, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	if input.Len() == 0 {
		return nil, errors.New("sim: empty input trace")
	}
	phvLen := p.PHVLen()
	i := 0
	next := func(dst []phv.Value) error {
		in := input.At(i)
		if in.Len() != phvLen {
			return fmt.Errorf("sim: input PHV %d has %d containers, pipeline expects %d", i, in.Len(), phvLen)
		}
		copy(dst, in.Raw())
		i++
		return nil
	}
	return NewFuzzer(p).Fuzz(spec, input.Len(), next, opts, maxMismatches)
}

// FuzzGen is the streaming form of FuzzBatch: n PHVs are drawn from gen
// directly into the fuzzer's ring, so no input trace is ever materialized.
func FuzzGen(p *core.Pipeline, spec Spec, gen *TrafficGen, n int, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	if n <= 0 {
		return nil, errors.New("sim: empty input trace")
	}
	return NewFuzzer(p).FuzzGen(spec, gen, n, opts, maxMismatches)
}

// FuzzRandom drives the streaming fuzzer with n PHVs from a fresh traffic
// generator and condenses the outcome to a first-mismatch FuzzReport.
func FuzzRandom(p *core.Pipeline, spec Spec, seed int64, n int, maxValue int64, opts FuzzOptions) (*FuzzReport, error) {
	gen := NewTrafficGen(seed, p.PHVLen(), p.Bits(), maxValue)
	batch, err := FuzzGen(p, spec, gen, n, opts, 1)
	if err != nil {
		return nil, err
	}
	return fuzzReportOf(batch), nil
}

// equalVals compares two value vectors on the selected containers (nil =
// every container). Vectors of different lengths never compare equal.
func equalVals(got, want []phv.Value, containers []int) bool {
	if len(got) != len(want) {
		return false
	}
	if containers == nil {
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	for _, c := range containers {
		if got[c] != want[c] {
			return false
		}
	}
	return true
}
