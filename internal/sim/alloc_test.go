// Allocation-regression tests for the streaming fuzz path: at optimized
// levels a clean run must perform zero steady-state allocations per PHV —
// the engine's ring buffers, the domino spec's scratch frames and the
// prechecked stage executor are all reused, so total allocations must not
// grow with the packet count. External test package: these tests drive the
// real Table-1 benchmarks, and internal/spec imports sim.
package sim_test

import (
	"fmt"
	"testing"

	"druzhba/internal/core"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

// fuzzAllocs measures the average allocation count of a full streaming fuzz
// run of n PHVs on a warm fuzzer (generator, report and spec reset are
// per-run fixed costs; everything else must be steady-state free).
func fuzzAllocs(t *testing.T, f *sim.Fuzzer, s sim.Spec, containers []int, maxInput int64, n int) float64 {
	t.Helper()
	pipe := f.Pipeline()
	return testing.AllocsPerRun(3, func() {
		gen := sim.NewTrafficGen(1, pipe.PHVLen(), pipe.Bits(), maxInput)
		rep, err := f.FuzzGen(s, gen, n, sim.FuzzOptions{Containers: containers}, 0)
		if err != nil {
			panic(err)
		}
		if !rep.Passed() {
			panic(fmt.Sprintf("fuzz failed: %+v", rep))
		}
	})
}

// TestStreamingFuzzZeroAllocsPerPHV asserts the zero-allocation property on
// every Table-1 benchmark at every optimized level: growing the packet
// count 8x must not grow the per-run allocation count, i.e. the marginal
// cost of a PHV is 0 allocs.
func TestStreamingFuzzZeroAllocsPerPHV(t *testing.T) {
	for _, bm := range spec.All() {
		for _, level := range []core.OptLevel{core.SCCPropagation, core.SCCInlining, core.Compiled} {
			t.Run(bm.Name+"/"+level.String(), func(t *testing.T) {
				pipe, err := bm.Pipeline(level)
				if err != nil {
					t.Fatal(err)
				}
				s, err := bm.SimSpec()
				if err != nil {
					t.Fatal(err)
				}
				containers, err := bm.CompareContainers()
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := s.(sim.StreamSpec); !ok {
					t.Fatalf("%s spec does not implement sim.StreamSpec", bm.Name)
				}
				f := sim.NewFuzzer(pipe)
				fuzzAllocs(t, f, s, containers, bm.MaxInput, 64) // warm ring, arena, scratch maps
				small := fuzzAllocs(t, f, s, containers, bm.MaxInput, 256)
				large := fuzzAllocs(t, f, s, containers, bm.MaxInput, 2048)
				if large > small+1 {
					t.Errorf("allocations grow with packet count: %v for 256 PHVs, %v for 2048 (%.4f allocs/PHV)",
						small, large, (large-small)/float64(2048-256))
				}
			})
		}
	}
}
