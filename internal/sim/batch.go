// batch.go is the struct-of-arrays execution mode of the streaming engine:
// packets live in column-major value planes (planes[container][packet]) and
// whole stage vectors execute per core.ExecuteStageBatch call, amortizing
// the tick loop's per-packet dispatch — ring bookkeeping, the per-tick
// recover boundary, the per-stage call and the output-mux switch — across a
// batch.
//
// Batch execution is observationally identical to the tick loop. The
// pipeline is feedforward and all mutable state is private to one (stage,
// slot) ALU; both schedules visit each ALU's state in packet-admission
// order, so outputs and final state are byte-identical. The fuzzer's
// batched mode exploits this to produce BatchReports byte-identical to
// streaming ones — including tick counts, which it reconstructs from the
// streaming schedule's arithmetic (a packet admitted at tick i completes at
// tick i+depth-1), and counterexample records, which it materializes from
// the plane columns of a mismatching batch.
package sim

import (
	"fmt"

	"druzhba/internal/core"
	"druzhba/internal/phv"
)

// Batch is the PHV-batch execution engine: input planes, two work plane
// sets ping-ponged across stages, and the per-ALU result scratch, all
// preallocated once and reused across runs. All planes are owned by the
// Batch: Load copies, Run retains no caller memory, and the slices returned
// by In and Out stay valid only until the next Run (they are overwritten in
// place, never reallocated, so a caller-held plane slice can never alias a
// later run's packets after Reset-style reuse). A Batch is not safe for
// concurrent use.
type Batch struct {
	p        *core.Pipeline
	depth    int
	phvLen   int
	capacity int
	in       [][]phv.Value // in[c][k]: container c of packet k, preserved across Run
	work     [2][][]phv.Value
	out      [][]phv.Value // final stage's output planes, set by Run
	sc       *core.BatchScratch
}

// NewBatch returns a batch engine over the pipeline with room for capacity
// packets per run. Batch execution uses the prechecked stage kernel, so the
// pipeline must satisfy core.Pipeline.Prechecked; callers with unoptimized
// pipelines use the streaming engine (the fuzzer falls back transparently).
func NewBatch(p *core.Pipeline, capacity int) (*Batch, error) {
	if !p.Prechecked() {
		return nil, fmt.Errorf("sim: batch execution requires a prechecked pipeline")
	}
	sc, err := p.NewBatchScratch(capacity)
	if err != nil {
		return nil, err
	}
	b := &Batch{p: p, depth: p.Depth(), phvLen: p.PHVLen(), capacity: capacity, sc: sc}
	backing := make([]phv.Value, 3*b.phvLen*capacity)
	plane := func(i int) []phv.Value { return backing[i*capacity : (i+1)*capacity : (i+1)*capacity] }
	b.in = make([][]phv.Value, b.phvLen)
	b.work[0] = make([][]phv.Value, b.phvLen)
	b.work[1] = make([][]phv.Value, b.phvLen)
	for c := 0; c < b.phvLen; c++ {
		b.in[c] = plane(c)
		b.work[0][c] = plane(b.phvLen + c)
		b.work[1][c] = plane(2*b.phvLen + c)
	}
	return b, nil
}

// Cap returns the engine's packet capacity per run.
func (b *Batch) Cap() int { return b.capacity }

// PHVLen returns the container count of every packet column.
func (b *Batch) PHVLen() int { return b.phvLen }

// In returns the input planes (In()[c][k] is container c of packet k).
// Callers may fill columns directly; the planes are owned by the Batch and
// are preserved across Run, so a mismatching packet's input can be read
// back after execution.
func (b *Batch) In() [][]phv.Value { return b.in }

// Out returns the output planes of the last Run: Out()[c][k] is container c
// of packet k's final pipeline output. The planes are owned by the Batch
// and valid until the next Run.
func (b *Batch) Out() [][]phv.Value { return b.out }

// Load scatters one packet's container values into column k of the input
// planes; vals is copied, the caller keeps ownership.
func (b *Batch) Load(k int, vals []phv.Value) {
	for c, v := range vals {
		b.in[c][k] = v
	}
}

// Run executes all pipeline stages over the first n packet columns of the
// input planes, leaving results readable via Out. Stateful ALU state
// advances exactly as a streaming run over the same packets would advance
// it. Evaluation panics (build-time impossible on prechecked pipelines, but
// guarded like the streaming tick loop) are converted to the error the
// unoptimized engine would have returned.
//
//dvet:hotpath allocs=0
func (b *Batch) Run(n int) (err error) {
	if n < 1 || n > b.capacity {
		//dvet:alloc-ok harness-misuse error path, never taken in a clean run
		return fmt.Errorf("sim: batch run of %d packets, capacity %d", n, b.capacity)
	}
	//dvet:alloc-ok non-escaping recover closure; the zero-alloc tests pin it to the stack
	defer func() {
		if r := recover(); r != nil {
			if e, ok := core.AsExecError(r); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	cur := b.in
	for si := 0; si < b.depth; si++ {
		nxt := b.work[si&1]
		b.p.ExecuteStageBatch(si, cur, nxt, b.sc, n)
		cur = nxt
	}
	b.out = cur
	return nil
}

// gatherCol copies packet column k of the planes into dst and returns it.
func gatherCol(planes [][]phv.Value, k int, dst []phv.Value) []phv.Value {
	dst = dst[:len(planes)]
	for c := range planes {
		dst[c] = planes[c][k]
	}
	return dst
}

// equalColRow compares packet column k of the planes against a row vector
// on the selected containers (nil = every container), with the same
// wrong-length rule as equalVals.
func equalColRow(planes [][]phv.Value, k int, want []phv.Value, containers []int) bool {
	if len(planes) != len(want) {
		return false
	}
	if containers == nil {
		for c := range planes {
			if planes[c][k] != want[c] {
				return false
			}
		}
		return true
	}
	for _, c := range containers {
		if planes[c][k] != want[c] {
			return false
		}
	}
	return true
}

// SetBatch selects the fuzzer's execution strategy: size >= 1 enables the
// PHV-batch engine with that batch size, 0 restores the streaming tick
// loop. Reports are byte-identical in every mode and for every batch size —
// batching is an execution strategy, not part of a campaign's identity — so
// the campaign engine exposes it as a free knob. On pipelines for which
// Prechecked is false the fuzzer stays on the streaming path regardless.
func (f *Fuzzer) SetBatch(size int) {
	if size < 0 {
		size = 0
	}
	f.batchSize = size
}

// ensureBatch (re)allocates the batched mode's planes and scratch rows the
// first time a batched run needs them (or when the batch size grew).
func (f *Fuzzer) ensureBatch() error {
	size := f.batchSize
	if f.batch != nil && f.batch.Cap() >= size {
		return nil
	}
	b, err := NewBatch(f.pipe, size)
	if err != nil {
		return err
	}
	phvLen := f.pipe.PHVLen()
	backing := make([]phv.Value, size*phvLen)
	rows := make([][]phv.Value, size)
	for k := 0; k < size; k++ {
		// Want rows start empty and are refilled by append, so a spec
		// returning a wrong-length PHV is caught by the comparison — the
		// same discipline as the streaming ring.
		base := k * phvLen
		rows[k] = backing[base : base : base+phvLen]
	}
	f.batch = b
	f.wantRows = rows
	f.fillRow = make([]phv.Value, phvLen)
	f.gatherRow = make([]phv.Value, phvLen)
	f.stateBuf = make([]phv.Value, f.pipe.StateLen())
	return nil
}

// fuzzBatched is Fuzz on the batch engine. Packets are generated and
// spec-processed in admission order (so generator and spec state advance
// exactly as in streaming mode), executed a batch at a time, and compared
// column against want row. Reports are byte-identical to the streaming
// path: tick counts follow the streaming schedule's arithmetic, mismatch
// records are materialized from plane columns in index order, and every
// early-exit path (counterexample cap, generator error, spec error,
// evaluation panic) reconstructs the exact point the streaming run would
// have stopped — including dropping comparisons the streaming run would
// never have reached.
func (f *Fuzzer) fuzzBatched(spec Spec, n int, next func(dst []phv.Value) error, opts FuzzOptions, maxMismatches int) (*BatchReport, error) {
	if err := f.ensureBatch(); err != nil {
		return nil, err
	}
	report := &BatchReport{SpecName: spec.Name()}
	f.pipe.ResetState()
	f.stream.Reset() // the evaluation-panic replay path starts from a clean ring
	spec.Reset()
	ss, streaming := spec.(StreamSpec)
	var mms []Mismatch
	for at := 0; at < n; at += f.batchSize {
		m := f.batchSize
		if n-at < m {
			m = n - at
		}
		for k := 0; k < m; k++ {
			i := at + k
			if err := next(f.fillRow); err != nil {
				// Streaming admits packet i at tick i; the run would have
				// stopped there with err as its finding. Execute and
				// compare the packets already filled — their completions
				// precede tick i or are dropped by the endgame.
				mms, errTick, execErr := f.runCompareBatch(at, k, opts, mms)
				if execErr != nil && errTick < i {
					return f.finishBatched(report, mms, maxMismatches, n, errTick, fmt.Errorf("sim: tick %d: %w", errTick, execErr))
				}
				return f.finishBatched(report, mms, maxMismatches, n, i, err)
			}
			f.batch.Load(k, f.fillRow)
			// Lock step: the spec consumes packet i on the tick of its
			// admission, so spec state advances in packet order.
			if streaming {
				f.wantRows[k] = append(f.wantRows[k][:0], f.fillRow...)
				if serr := ss.ProcessStream(f.wantRows[k]); serr != nil {
					return f.specAbortBatched(report, spec, mms, maxMismatches, at, k, opts, serr)
				}
			} else {
				copy(f.specIn.Raw(), f.fillRow)
				out, serr := spec.Process(f.specIn)
				if serr != nil {
					return f.specAbortBatched(report, spec, mms, maxMismatches, at, k, opts, serr)
				}
				f.wantRows[k] = append(f.wantRows[k][:0], out.Raw()...)
			}
		}
		var errTick int
		var execErr error
		mms, errTick, execErr = f.runCompareBatch(at, m, opts, mms)
		if execErr != nil {
			return f.finishBatched(report, mms, maxMismatches, n, errTick, fmt.Errorf("sim: tick %d: %w", errTick, execErr))
		}
		if maxMismatches > 0 && len(mms) >= maxMismatches {
			return f.finishBatched(report, mms, maxMismatches, n, -1, nil)
		}
	}
	return f.finishBatched(report, mms, maxMismatches, n, -1, nil)
}

// runCompareBatch executes the first m filled packets of the batch starting
// at global packet index 'at' and appends any mismatches, materialized from
// the plane columns, in index order. On an evaluation panic it restores the
// pre-batch state checkpoint and replays the batch through the streaming
// engine, returning the exact global tick and error the streaming run would
// have reported (with the comparisons completed before that tick already
// appended).
func (f *Fuzzer) runCompareBatch(at, m int, opts FuzzOptions, mms []Mismatch) ([]Mismatch, int, error) {
	if m == 0 {
		return mms, -1, nil
	}
	if len(f.stateBuf) > 0 {
		f.pipe.CopyStateTo(f.stateBuf)
	}
	if err := f.batch.Run(m); err != nil {
		return f.replayBatch(at, m, opts, mms)
	}
	out := f.batch.Out()
	in := f.batch.In()
	for k := 0; k < m; k++ {
		if !equalColRow(out, k, f.wantRows[k], opts.Containers) {
			//dvet:alloc-ok mismatch collection is the cold path; clean runs never reach it
			mms = append(mms, Mismatch{
				Index: at + k,
				Input: phv.FromValues(gatherCol(in, k, f.gatherRow)),
				Got:   phv.FromValues(gatherCol(out, k, f.gatherRow)),
				Want:  phv.FromValues(f.wantRows[k]),
			})
		}
	}
	return mms, -1, nil
}

// replayBatch is the evaluation-panic fallback: state is restored to the
// pre-batch checkpoint and the batch's packets are replayed through the
// streaming engine tick by tick, reproducing the exact tick, error and set
// of completed comparisons of a streaming run. (Build-time impossible on
// prechecked pipelines; kept so even that path stays byte-identical. Should
// the replay not reproduce the panic, its results stand in for the batch —
// both schedules compute identical values — and the run continues.)
func (f *Fuzzer) replayBatch(at, m int, opts FuzzOptions, mms []Mismatch) ([]Mismatch, int, error) {
	f.pipe.SetStateFrom(f.stateBuf)
	f.stream.Reset()
	in := f.batch.In()
	fed, compared := 0, 0
	for fed < m || f.stream.InFlight() > 0 {
		var row []phv.Value
		if fed < m {
			row = gatherCol(in, fed, f.fillRow)
			fed++
		}
		out, err := f.stream.Tick(row)
		if err != nil {
			return mms, at + f.stream.Ticks(), err
		}
		if out == nil {
			continue
		}
		if !equalVals(out, f.wantRows[compared], opts.Containers) {
			mms = append(mms, Mismatch{
				Index: at + compared,
				Input: phv.FromValues(gatherCol(in, compared, f.gatherRow)),
				Got:   phv.FromValues(out),
				Want:  phv.FromValues(f.wantRows[compared]),
			})
		}
		compared++
	}
	return mms, -1, nil
}

// specAbortBatched reconstructs the streaming outcome of a spec failure at
// global packet index i = at+k: a harness error — unless the counterexample
// cap would have been reached strictly before packet i's admission tick, in
// which case the capped report wins exactly as it would in streaming mode.
func (f *Fuzzer) specAbortBatched(report *BatchReport, spec Spec, mms []Mismatch, maxMismatches, at, k int, opts FuzzOptions, serr error) (*BatchReport, error) {
	i := at + k
	mms, errTick, execErr := f.runCompareBatch(at, k, opts, mms)
	if execErr != nil && errTick < i {
		return f.finishBatched(report, mms, maxMismatches, 0, errTick, fmt.Errorf("sim: tick %d: %w", errTick, execErr))
	}
	depth := f.pipe.Depth()
	if maxMismatches > 0 && len(mms) >= maxMismatches {
		if capM := mms[maxMismatches-1]; capM.Index+depth-1 < i {
			report.Mismatches = mms[:maxMismatches]
			report.Checked = capM.Index + 1
			report.Ticks = capM.Index + depth
			return report, nil
		}
	}
	return nil, fmt.Errorf("sim: spec %q, PHV %d: %w", spec.Name(), i, serr)
}

// finishBatched assembles the final report from the accumulated mismatches,
// replicating the streaming engine's stopping rules. abortTick < 0 means
// the stream ran to completion (n packets over n+depth-1 ticks, modulo the
// counterexample cap); otherwise the run aborted at abortTick with abortErr
// as its finding, and only packets completed strictly before that tick
// count as checked — comparisons past it, which the streaming run would
// never have reached, are dropped.
func (f *Fuzzer) finishBatched(report *BatchReport, mms []Mismatch, maxMismatches, n, abortTick int, abortErr error) (*BatchReport, error) {
	depth := f.pipe.Depth()
	if maxMismatches > 0 && len(mms) >= maxMismatches {
		// The cap triggers the moment the maxMismatches-th diverging packet
		// surfaces; it wins over an abort at a strictly later tick.
		if capM := mms[maxMismatches-1]; abortTick < 0 || capM.Index+depth-1 < abortTick {
			report.Mismatches = mms[:maxMismatches]
			report.Checked = capM.Index + 1
			report.Ticks = capM.Index + depth
			return report, nil
		}
	}
	if abortTick < 0 {
		report.Mismatches = mms
		report.Checked = n
		report.Ticks = n + depth - 1
		return report, nil
	}
	checked := abortTick - depth + 1
	if checked < 0 {
		checked = 0
	}
	for len(mms) > 0 && mms[len(mms)-1].Index >= checked {
		mms = mms[:len(mms)-1]
	}
	if len(mms) == 0 {
		mms = nil
	}
	report.Mismatches = mms
	report.Checked = checked
	report.Ticks = abortTick
	report.Err = abortErr
	return report, nil
}
