package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"druzhba/internal/core"
	"druzhba/internal/phv"
)

// batchReportsEqual fails unless the two BatchReports are byte-identical in
// every exported field (error compared by rendered message).
func batchReportsEqual(t *testing.T, label string, batched, streamed *BatchReport) {
	t.Helper()
	if batched.SpecName != streamed.SpecName {
		t.Fatalf("%s: spec %q vs %q", label, batched.SpecName, streamed.SpecName)
	}
	if batched.Checked != streamed.Checked || batched.Ticks != streamed.Ticks {
		t.Fatalf("%s: batched (checked=%d ticks=%d) != streamed (checked=%d ticks=%d)",
			label, batched.Checked, batched.Ticks, streamed.Checked, streamed.Ticks)
	}
	if (batched.Err == nil) != (streamed.Err == nil) {
		t.Fatalf("%s: Err %v vs %v", label, batched.Err, streamed.Err)
	}
	if batched.Err != nil && batched.Err.Error() != streamed.Err.Error() {
		t.Fatalf("%s: Err %q vs %q", label, batched.Err, streamed.Err)
	}
	if len(batched.Mismatches) != len(streamed.Mismatches) {
		t.Fatalf("%s: %d vs %d mismatches", label, len(batched.Mismatches), len(streamed.Mismatches))
	}
	for i := range batched.Mismatches {
		a, b := batched.Mismatches[i], streamed.Mismatches[i]
		if a.Index != b.Index || !a.Input.Equal(b.Input) || !a.Got.Equal(b.Got) || !a.Want.Equal(b.Want) {
			t.Fatalf("%s: mismatch %d differs: %s vs %s", label, i, &a, &b)
		}
	}
}

// TestBatchedFuzzMatchesStreamingSweep is the core byte-identity sweep:
// batch sizes 1, 7 (partial tails: 300 = 42*7+6), 64 and one exceeding the
// whole run, over clean and diverging specs, with and without a
// counterexample cap, at both prechecked levels. Every cell's BatchReport
// must equal the streaming report field for field, mismatch for mismatch.
func TestBatchedFuzzMatchesStreamingSweep(t *testing.T) {
	const n = 300
	for _, level := range []core.OptLevel{core.SCCInlining, core.Compiled} {
		for _, tc := range []struct {
			name string
			spec func() Spec
		}{
			{"clean", passThroughSpec},
			{"diverging", brokenSpec},
		} {
			for _, maxMM := range []int{0, 3} {
				pStream := buildPipeline(t, 3, 2, "pred_raw", nil, level)
				if !pStream.Prechecked() {
					t.Fatalf("%s pipeline is not prechecked; the batched path would never engage", level)
				}
				streamed, err := NewFuzzer(pStream).FuzzGen(tc.spec(), NewTrafficGen(9, 2, phv.Default32, 1000), n, FuzzOptions{}, maxMM)
				if err != nil {
					t.Fatal(err)
				}
				if tc.name == "diverging" && len(streamed.Mismatches) == 0 {
					t.Fatal("diverging streaming run found no mismatches to cross-check")
				}
				for _, size := range []int{1, 7, 64, n + 100} {
					label := fmt.Sprintf("%s/%s/max=%d/size=%d", level, tc.name, maxMM, size)
					pBatch := buildPipeline(t, 3, 2, "pred_raw", nil, level)
					f := NewFuzzer(pBatch)
					f.SetBatch(size)
					batched, err := f.FuzzGen(tc.spec(), NewTrafficGen(9, 2, phv.Default32, 1000), n, FuzzOptions{}, maxMM)
					if err != nil {
						t.Fatal(err)
					}
					batchReportsEqual(t, label, batched, streamed)
				}
			}
		}
	}
}

// TestBatchedNextErrorMatchesStreaming: a generator failure at packet i
// aborts a streaming run at tick i with only the packets completed strictly
// before it counted — mismatches past the abort dropped. The batched path
// must reconstruct that exact report, whether the failure lands at the
// start, inside a batch, or deep into the run.
func TestBatchedNextErrorMatchesStreaming(t *testing.T) {
	const n = 300
	boom := errors.New("traffic source failed")
	nextErrAt := func(i int) func(dst []phv.Value) error {
		gen := NewTrafficGen(9, 2, phv.Default32, 1000)
		calls := 0
		return func(dst []phv.Value) error {
			if calls == i {
				return boom
			}
			calls++
			gen.Fill(dst)
			return nil
		}
	}
	for _, errAt := range []int{0, 5, 150} {
		pStream := buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled)
		streamed, err := NewFuzzer(pStream).Fuzz(brokenSpec(), n, nextErrAt(errAt), FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(streamed.Err, boom) {
			t.Fatalf("errAt=%d: streaming Err = %v, want the generator failure", errAt, streamed.Err)
		}
		for _, size := range []int{7, 64} {
			pBatch := buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled)
			f := NewFuzzer(pBatch)
			f.SetBatch(size)
			batched, err := f.Fuzz(brokenSpec(), n, nextErrAt(errAt), FuzzOptions{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			batchReportsEqual(t, fmt.Sprintf("errAt=%d/size=%d", errAt, size), batched, streamed)
			if !errors.Is(batched.Err, boom) {
				t.Fatalf("errAt=%d/size=%d: batched Err = %v, want the generator failure unwrapped", errAt, size, batched.Err)
			}
		}
	}
}

// specErrAt wraps a spec so it fails on packet i, diverging (or not) on the
// packets before it.
func specErrAt(inner Spec, i int) Spec {
	calls := 0
	return &SpecFunc{SpecName: inner.Name(), Fn: func(in *phv.PHV) (*phv.PHV, error) {
		if calls == i {
			return nil, errors.New("spec gave up")
		}
		calls++
		return inner.(*SpecFunc).Fn(in)
	}}
}

// TestBatchedSpecErrorMatchesStreaming: a specification failure is harness
// misuse — a non-nil error and no report — in both modes, with identical
// messages; except when the counterexample cap was reached strictly before
// the failing packet's admission, in which case the capped report wins in
// both modes.
func TestBatchedSpecErrorMatchesStreaming(t *testing.T) {
	const n = 300
	run := func(pipe *core.Pipeline, batch int, spec Spec, maxMM int) (*BatchReport, error) {
		f := NewFuzzer(pipe)
		f.SetBatch(batch)
		return f.FuzzGen(spec, NewTrafficGen(9, 2, phv.Default32, 1000), n, FuzzOptions{}, maxMM)
	}

	// Clean prefix, spec failure at packet 100: harness error in both modes.
	streamed, serr := run(buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled), 0, specErrAt(passThroughSpec(), 100), 0)
	if serr == nil || streamed != nil {
		t.Fatalf("streaming spec failure: report=%v err=%v, want nil report and an error", streamed, serr)
	}
	for _, size := range []int{7, 64} {
		batched, berr := run(buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled), size, specErrAt(passThroughSpec(), 100), 0)
		if berr == nil || batched != nil {
			t.Fatalf("size=%d: batched spec failure: report=%v err=%v, want nil report and an error", size, batched, berr)
		}
		if berr.Error() != serr.Error() {
			t.Fatalf("size=%d: batched err %q, streaming err %q", size, berr, serr)
		}
	}

	// Diverging spec capped at 1 mismatch long before the failure at packet
	// 200: the cap wins and both modes return the identical capped report.
	streamedCap, serr := run(buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled), 0, specErrAt(brokenSpec(), 200), 1)
	if serr != nil {
		t.Fatalf("capped streaming run errored: %v", serr)
	}
	if len(streamedCap.Mismatches) != 1 || streamedCap.Err != nil {
		t.Fatalf("capped streaming run: %+v, want exactly the capped mismatch", streamedCap)
	}
	for _, size := range []int{7, 64} {
		batchedCap, berr := run(buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled), size, specErrAt(brokenSpec(), 200), 1)
		if berr != nil {
			t.Fatal(berr)
		}
		batchReportsEqual(t, fmt.Sprintf("cap-wins/size=%d", size), batchedCap, streamedCap)
	}
}

// TestBatchedFallsBackUnoptimized: on a pipeline without Prechecked the
// fuzzer ignores SetBatch and stays on the streaming tick loop, producing
// the streaming report rather than failing.
func TestBatchedFallsBackUnoptimized(t *testing.T) {
	pStream := buildPipeline(t, 2, 2, "pred_raw", nil, core.Unoptimized)
	if pStream.Prechecked() {
		t.Fatal("unoptimized pipeline unexpectedly prechecked")
	}
	streamed, err := NewFuzzer(pStream).FuzzGen(brokenSpec(), NewTrafficGen(3, 2, phv.Default32, 1000), 200, FuzzOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pBatch := buildPipeline(t, 2, 2, "pred_raw", nil, core.Unoptimized)
	f := NewFuzzer(pBatch)
	f.SetBatch(64)
	batched, err := f.FuzzGen(brokenSpec(), NewTrafficGen(3, 2, phv.Default32, 1000), 200, FuzzOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	batchReportsEqual(t, "unoptimized fallback", batched, streamed)
	if _, err := NewBatch(pStream, 8); err == nil {
		t.Fatal("NewBatch accepted an unoptimized pipeline")
	}
}

// TestBatchMatchesStream differentially tests the plane engine itself
// against the tick loop over randomized stateful pipelines: same packets in
// chunks of varying size (with partial tails), same outputs column for
// column, same final stateful-ALU state.
func TestBatchMatchesStream(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(70*trial + 7)))
		pStream := randomizedPipeline(t, 3, 2, "pair", rng, core.Compiled)
		rng = rand.New(rand.NewSource(int64(70*trial + 7)))
		pBatch := randomizedPipeline(t, 3, 2, "pair", rng, core.Compiled)

		const n = 50
		input := NewTrafficGen(int64(trial), 2, phv.Default32, 1<<16).Trace(n)

		stream := NewStream(pStream)
		want := phv.NewTrace()
		for fed := 0; fed < n || stream.InFlight() > 0; {
			var in []phv.Value
			if fed < n {
				in = input.At(fed).Raw()
				fed++
			}
			out, err := stream.Tick(in)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				want.Append(phv.FromValues(out))
			}
		}

		b, err := NewBatch(pBatch, 8)
		if err != nil {
			t.Fatal(err)
		}
		got := phv.NewTrace()
		for at := 0; at < n; at += 8 {
			m := 8
			if n-at < m {
				m = n - at // 50 = 6*8+2: the last chunk is a partial tail
			}
			for k := 0; k < m; k++ {
				b.Load(k, input.At(at+k).Raw())
			}
			if err := b.Run(m); err != nil {
				t.Fatal(err)
			}
			row := make([]phv.Value, b.PHVLen())
			for k := 0; k < m; k++ {
				got.Append(phv.FromValues(gatherCol(b.Out(), k, row)))
			}
		}
		if d := want.Diff(got); d != "" {
			t.Fatalf("trial %d: batch diverges from stream: %s", trial, d)
		}
		if !pBatch.StateSnapshot().Equal(pStream.StateSnapshot()) {
			t.Fatalf("trial %d: final stateful-ALU states diverge", trial)
		}
	}
}

// TestBatchAliasingAudit pins the plane-ownership contract: Load copies its
// argument, so a caller mutating (or reusing) its row after Load cannot
// corrupt the batch; and In/Out planes are overwritten in place across
// runs — never reallocated — so a slice held from run 1 observes run 2's
// packets instead of silently retaining stale ones.
func TestBatchAliasingAudit(t *testing.T) {
	p := buildPipeline(t, 2, 2, "", nil, core.Compiled) // identity pipeline
	b, err := NewBatch(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	row := []phv.Value{10, 20}
	b.Load(0, row)
	row[0], row[1] = 99, 99 // caller reuses its buffer; the batch must not see it
	b.Load(1, []phv.Value{30, 40})
	if err := b.Run(2); err != nil {
		t.Fatal(err)
	}
	if b.In()[0][0] != 10 || b.In()[1][0] != 20 {
		t.Fatalf("Load aliased the caller's row: in[*][0] = %d,%d, want 10,20", b.In()[0][0], b.In()[1][0])
	}
	if b.Out()[0][0] != 10 || b.Out()[0][1] != 30 {
		t.Fatalf("identity outputs wrong: %d,%d", b.Out()[0][0], b.Out()[0][1])
	}

	// Planes are reused in place across Run: the held slice sees run 2.
	heldIn, heldOut := b.In()[0], b.Out()[0]
	b.Load(0, []phv.Value{77, 78})
	if err := b.Run(1); err != nil {
		t.Fatal(err)
	}
	if &heldIn[0] != &b.In()[0][0] || heldIn[0] != 77 {
		t.Fatal("input planes were reallocated between runs; Reset-style reuse would leak stale packets to holders")
	}
	if &heldOut[0] != &b.Out()[0][0] || heldOut[0] != 77 {
		t.Fatal("output planes were reallocated between runs")
	}

	// Capacity misuse is an error, not a partial run.
	if err := b.Run(5); err == nil {
		t.Fatal("Run beyond capacity succeeded")
	}
	if err := b.Run(0); err == nil {
		t.Fatal("empty Run succeeded")
	}
}

// TestFuzzerSetBatchResize: one fuzzer swept through growing, shrinking and
// streaming batch sizes (exercising plane reallocation and reuse) keeps
// producing the streaming report.
func TestFuzzerSetBatchResize(t *testing.T) {
	const n = 300
	pStream := buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled)
	want, err := NewFuzzer(pStream).FuzzGen(brokenSpec(), NewTrafficGen(5, 2, phv.Default32, 1000), n, FuzzOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := buildPipeline(t, 3, 2, "pred_raw", nil, core.Compiled)
	f := NewFuzzer(p)
	for _, size := range []int{8, 64, 8, 0, 512, 3} {
		f.SetBatch(size)
		got, err := f.FuzzGen(brokenSpec(), NewTrafficGen(5, 2, phv.Default32, 1000), n, FuzzOptions{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		batchReportsEqual(t, fmt.Sprintf("size=%d", size), got, want)
	}
}
