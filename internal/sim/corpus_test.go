package sim

import (
	"testing"

	"druzhba/internal/phv"
)

// TestTrafficGenSeedCorpus pins the corpus-replay contract: seeded packets
// are served first, verbatim and in order, and consume no random numbers —
// so the stream after the corpus is exactly the stream an unseeded
// generator with the same seed produces from its start.
func TestTrafficGenSeedCorpus(t *testing.T) {
	corpus := [][]phv.Value{{7, 3, 1}, {7, 3, 1}, {0, 0, 5}}
	seeded := NewTrafficGen(42, 3, phv.Default32, 0)
	seeded.SeedCorpus(corpus)
	plain := NewTrafficGen(42, 3, phv.Default32, 0)

	for i, want := range corpus {
		got := seeded.Next()
		for c, v := range want {
			if got.Get(c) != v {
				t.Fatalf("corpus packet %d container %d: got %d, want %d", i, c, got.Get(c), v)
			}
		}
	}
	if !seeded.Trace(20).Equal(plain.Trace(20)) {
		t.Fatal("post-corpus stream differs from the unseeded stream (corpus must consume no RNG)")
	}
}

// TestTrafficGenCorpusLengthMismatch pins the padding rule: short corpus
// entries zero-fill the remaining containers, long ones truncate.
func TestTrafficGenCorpusLengthMismatch(t *testing.T) {
	g := NewTrafficGen(1, 3, phv.Default32, 0)
	g.SeedCorpus([][]phv.Value{{9}, {1, 2, 3, 4}})
	first := g.Next()
	if first.Get(0) != 9 || first.Get(1) != 0 || first.Get(2) != 0 {
		t.Fatalf("short entry: got %v, want [9 0 0]", first)
	}
	second := g.Next()
	if second.Get(0) != 1 || second.Get(1) != 2 || second.Get(2) != 3 {
		t.Fatalf("long entry: got %v, want [1 2 3]", second)
	}
}
