package sim

import (
	"testing"
	"testing/quick"

	"druzhba/internal/core"
	"druzhba/internal/phv"
)

// TestIdentityPipelineProperty: an all-pass-through pipeline returns any
// trace unchanged, whatever the inputs (testing/quick over input vectors).
func TestIdentityPipelineProperty(t *testing.T) {
	p := buildPipeline(t, 3, 2, "pred_raw", nil, core.SCCInlining)
	f := func(raw [][2]uint32) bool {
		if len(raw) == 0 {
			return true
		}
		input := phv.NewTrace()
		for _, pair := range raw {
			input.Append(phv.FromValues([]phv.Value{int64(pair[0]), int64(pair[1])}))
		}
		res, err := Run(p, input)
		if err != nil {
			return false
		}
		return res.Output.Equal(input)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunDeterministicProperty: simulating the same trace twice from reset
// state yields identical outputs and final state.
func TestRunDeterministicProperty(t *testing.T) {
	p := buildPipeline(t, 2, 1, "raw", nil, core.SCCPropagation)
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		input := phv.NewTrace()
		for _, v := range vals {
			input.Append(phv.FromValues([]phv.Value{int64(v)}))
		}
		p.ResetState()
		r1, err1 := Run(p, input)
		p.ResetState()
		r2, err2 := Run(p, input)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Output.Equal(r2.Output) && r1.FinalState.Equal(r2.FinalState) && r1.Ticks == r2.Ticks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTickCountProperty: n PHVs through depth d always take n+d-1 ticks.
func TestTickCountProperty(t *testing.T) {
	for depth := 1; depth <= 5; depth++ {
		p := buildPipeline(t, depth, 1, "", nil, core.SCCInlining)
		for _, n := range []int{1, 2, 7, 31} {
			g := NewTrafficGen(int64(depth*100+n), 1, phv.Default32, 0)
			res, err := Run(p, g.Trace(n))
			if err != nil {
				t.Fatal(err)
			}
			if want := n + depth - 1; res.Ticks != want {
				t.Errorf("depth %d, n %d: ticks = %d, want %d", depth, n, res.Ticks, want)
			}
			if res.Output.Len() != n {
				t.Errorf("depth %d, n %d: outputs = %d", depth, n, res.Output.Len())
			}
		}
	}
}

// TestSlotHistoryInvariants: with full recording, exactly min(t+1, n,
// in-flight bound) PHVs occupy the pipeline each tick, and every recorded
// slot PHV has the pipeline's container count.
func TestSlotHistoryInvariants(t *testing.T) {
	p := buildPipeline(t, 3, 2, "pair", nil, core.SCCInlining)
	g := NewTrafficGen(5, 2, phv.Default32, 1000)
	n := 10
	res, err := RunOpts(p, g.Trace(n), RunOptions{RecordSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlotHistory) != res.Ticks {
		t.Fatalf("slot history length %d != ticks %d", len(res.SlotHistory), res.Ticks)
	}
	for tick, slots := range res.SlotHistory {
		occupied := 0
		for _, s := range slots {
			if s != nil {
				occupied++
				if len(s) != 2 {
					t.Fatalf("tick %d: slot PHV has %d containers", tick, len(s))
				}
			}
		}
		if occupied == 0 {
			t.Errorf("tick %d: pipeline empty mid-run", tick)
		}
	}
}
