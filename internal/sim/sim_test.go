package sim

import (
	"math/rand"
	"strings"
	"testing"

	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
)

func buildPipeline(t *testing.T, depth, width int, statefulAtom string, mutate func(*core.Spec, *machinecode.Program), level core.OptLevel) *core.Pipeline {
	t.Helper()
	s := core.Spec{
		Depth:        depth,
		Width:        width,
		StatelessALU: atoms.MustLoad("stateless_full"),
	}
	if statefulAtom != "" {
		s.StatefulALU = atoms.MustLoad(statefulAtom)
	}
	req, err := s.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	if mutate != nil {
		mutate(&s, code)
	}
	p, err := core.Build(s, code, level)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrafficGenDeterministic(t *testing.T) {
	g1 := NewTrafficGen(99, 3, phv.Default32, 0)
	g2 := NewTrafficGen(99, 3, phv.Default32, 0)
	tr1 := g1.Trace(50)
	tr2 := g2.Trace(50)
	if !tr1.Equal(tr2) {
		t.Error("same seed produced different traces")
	}
	g3 := NewTrafficGen(100, 3, phv.Default32, 0)
	if tr1.Equal(g3.Trace(50)) {
		t.Error("different seeds produced identical traces")
	}
}

func TestTrafficGenBounds(t *testing.T) {
	g := NewTrafficGen(1, 2, phv.Default32, 1024)
	for i := 0; i < 200; i++ {
		p := g.Next()
		for c := 0; c < p.Len(); c++ {
			if v := p.Get(c); v < 0 || v >= 1024 {
				t.Fatalf("value %d outside [0,1024)", v)
			}
		}
	}
}

func TestRunTickCount(t *testing.T) {
	// n PHVs through a depth-d pipeline drain in exactly n+d-1... with one
	// admission per tick and one stage per tick: last PHV enters at tick
	// n-1 and exits after d stages at tick n-1+d-1, so total ticks = n+d-1.
	p := buildPipeline(t, 3, 1, "", nil, core.SCCInlining)
	g := NewTrafficGen(7, 1, phv.Default32, 0)
	input := g.Trace(10)
	res, err := Run(p, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 10 {
		t.Errorf("output trace length = %d, want 10", res.Output.Len())
	}
	if want := 10 + 3 - 1; res.Ticks != want {
		t.Errorf("ticks = %d, want %d", res.Ticks, want)
	}
}

func TestRunIdentityPipeline(t *testing.T) {
	p := buildPipeline(t, 4, 2, "if_else_raw", nil, core.SCCInlining)
	g := NewTrafficGen(3, 2, phv.Default32, 0)
	input := g.Trace(25)
	res, err := Run(p, input)
	if err != nil {
		t.Fatal(err)
	}
	if d := input.Diff(res.Output); d != "" {
		t.Errorf("identity pipeline altered trace: %s", d)
	}
}

// TestTickEqualsDataflow: the tick-accurate run must equal processing each
// PHV to completion one at a time (stages are feedforward and state is
// per-stage, so pipelining cannot change results).
func TestTickEqualsDataflow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mutate := func(s *core.Spec, code *machinecode.Program) {
		req, _ := s.RequiredPairs()
		for _, h := range req {
			if h.Domain > 0 {
				code.Set(h.Name, int64(rng.Intn(h.Domain)))
			} else {
				code.Set(h.Name, int64(rng.Intn(8)))
			}
		}
	}
	for trial := 0; trial < 10; trial++ {
		pTick := buildPipeline(t, 3, 2, "pair", mutate, core.SCCInlining)
		g := NewTrafficGen(int64(trial), 2, phv.Default32, 1<<16)
		input := g.Trace(30)
		tickRes, err := Run(pTick, input)
		if err != nil {
			t.Fatal(err)
		}
		// Note: mutate consumed rng; rebuild identical machine code by
		// cloning the pipeline's behaviour via a second Run after reset.
		pTick.ResetState()
		seq := phv.NewTrace()
		for i := 0; i < input.Len(); i++ {
			o, err := pTick.Process(input.At(i).Clone())
			if err != nil {
				t.Fatal(err)
			}
			seq.Append(o)
		}
		if d := tickRes.Output.Diff(seq); d != "" {
			t.Fatalf("trial %d: tick-level and dataflow outputs differ: %s", trial, d)
		}
	}
}

func TestRunRecordStates(t *testing.T) {
	p := buildPipeline(t, 2, 1, "raw", func(s *core.Spec, code *machinecode.Program) {
		// stage 0 stateful ALU accumulates container 0.
		code.Set(machinecode.ALUHoleName(0, true, 0, "mux2_0"), 0)
		code.Set(machinecode.OutputMuxName(0, 0), 2)
	}, core.SCCInlining)
	g := NewTrafficGen(5, 1, phv.Default32, 100)
	input := g.Trace(5)
	res, err := RunOpts(p, input, RunOptions{RecordStates: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StateHistory) != res.Ticks {
		t.Fatalf("state history length %d != ticks %d", len(res.StateHistory), res.Ticks)
	}
	// The accumulator state must be non-decreasing across ticks.
	prev := int64(-1)
	for i, snap := range res.StateHistory {
		v := snap[0][0][0]
		if v < prev {
			t.Errorf("tick %d: state decreased %d -> %d", i, prev, v)
		}
		prev = v
	}
	if !res.FinalState.Equal(res.StateHistory[len(res.StateHistory)-1]) {
		t.Error("final state != last history entry")
	}
}

func TestRunWrongPHVLen(t *testing.T) {
	p := buildPipeline(t, 1, 2, "", nil, core.SCCInlining)
	input := phv.NewTrace()
	input.Append(phv.New(3))
	if _, err := Run(p, input); err == nil {
		t.Error("Run accepted wrong-length PHV")
	}
}

// passThroughSpec expects the pipeline to be an identity function.
func passThroughSpec() Spec {
	return &SpecFunc{SpecName: "identity", Fn: func(in *phv.PHV) (*phv.PHV, error) {
		return in.Clone(), nil
	}}
}

func TestFuzzPass(t *testing.T) {
	p := buildPipeline(t, 2, 2, "pred_raw", nil, core.SCCPropagation)
	rep, err := FuzzRandom(p, passThroughSpec(), 1, 500, 0, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("fuzz failed: %s", rep)
	}
	if rep.Checked != 500 {
		t.Errorf("checked = %d, want 500", rep.Checked)
	}
	if !strings.HasPrefix(rep.String(), "PASS") {
		t.Errorf("report = %q, want PASS prefix", rep)
	}
}

func TestFuzzDetectsMismatch(t *testing.T) {
	// Pipeline computes identity; spec expects +1 on container 0.
	p := buildPipeline(t, 1, 1, "", nil, core.SCCInlining)
	spec := &SpecFunc{SpecName: "plus-one", Fn: func(in *phv.PHV) (*phv.PHV, error) {
		out := in.Clone()
		out.Set(0, out.Get(0)+1)
		return out, nil
	}}
	rep, err := FuzzRandom(p, spec, 2, 100, 0, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("fuzz passed, want mismatch")
	}
	if rep.FailIndex != 0 {
		t.Errorf("FailIndex = %d, want 0", rep.FailIndex)
	}
	if rep.Got == nil || rep.Want == nil || rep.Input == nil {
		t.Error("failure report lacks PHV details")
	}
	if !strings.HasPrefix(rep.String(), "FAIL") {
		t.Errorf("report = %q, want FAIL prefix", rep)
	}
}

func TestFuzzContainerMask(t *testing.T) {
	// Pipeline writes garbage into container 1 but container 0 is correct:
	// with a mask on container 0 the fuzz passes, without it it fails.
	mutate := func(s *core.Spec, code *machinecode.Program) {
		code.Set(machinecode.ALUHoleName(0, false, 0, "alu_op_0"), 0) // add
		code.Set(machinecode.ALUHoleName(0, false, 0, "mux3_0"), 0)
		code.Set(machinecode.ALUHoleName(0, false, 0, "mux3_1"), 1)
		code.Set(machinecode.OutputMuxName(0, 1), 1) // container 1 <- ALU 0
	}
	spec := passThroughSpec()
	p := buildPipeline(t, 1, 2, "", mutate, core.SCCInlining)
	rep, err := FuzzRandom(p, spec, 3, 200, 1<<20, FuzzOptions{Containers: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("masked fuzz failed: %s", rep)
	}
	p2 := buildPipeline(t, 1, 2, "", mutate, core.SCCInlining)
	rep2, err := FuzzRandom(p2, spec, 3, 200, 1<<20, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Passed {
		t.Fatal("unmasked fuzz passed, want failure on container 1")
	}
}

func TestFuzzReportsRuntimeFailure(t *testing.T) {
	// BuildUnchecked + a deleted ALU pair: the failure must land in
	// FuzzReport.Err, not as a harness error (§5.2 failure class 1).
	s := core.Spec{Depth: 1, Width: 1, StatelessALU: atoms.MustLoad("stateless_full"), StatefulALU: atoms.MustLoad("raw")}
	req, err := s.RequiredPairs()
	if err != nil {
		t.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	code.Delete(machinecode.ALUHoleName(0, false, 0, "const_0"))
	p, err := core.BuildUnchecked(s, code)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FuzzRandom(p, passThroughSpec(), 4, 10, 0, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("fuzz passed with missing machine code pair")
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "missing machine code pair") {
		t.Errorf("Err = %v, want missing-pair simulation failure", rep.Err)
	}
}

func TestFuzzEmptyTrace(t *testing.T) {
	p := buildPipeline(t, 1, 1, "", nil, core.SCCInlining)
	if _, err := Fuzz(p, passThroughSpec(), phv.NewTrace(), FuzzOptions{}); err == nil {
		t.Error("Fuzz accepted empty trace")
	}
}

// statefulCounterSpec mirrors a pipeline whose stage-0 stateful ALU
// accumulates container 0 and writes the sum back to container 0.
type statefulCounterSpec struct{ sum int64 }

func (s *statefulCounterSpec) Name() string { return "counter" }
func (s *statefulCounterSpec) Reset()       { s.sum = 0 }
func (s *statefulCounterSpec) Process(in *phv.PHV) (*phv.PHV, error) {
	s.sum = phv.Default32.Add(s.sum, in.Get(0))
	out := in.Clone()
	out.Set(0, s.sum)
	return out, nil
}

func TestFuzzStatefulSpec(t *testing.T) {
	p := buildPipeline(t, 1, 1, "raw", func(s *core.Spec, code *machinecode.Program) {
		code.Set(machinecode.ALUHoleName(0, true, 0, "mux2_0"), 0)
		code.Set(machinecode.OutputMuxName(0, 0), 2)
	}, core.SCCInlining)
	rep, err := FuzzRandom(p, &statefulCounterSpec{}, 5, 1000, 0, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("stateful fuzz failed: %s", rep)
	}
}
