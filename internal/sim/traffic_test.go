package sim

import (
	"testing"

	"druzhba/internal/phv"
)

// TestTrafficGenBoundaryMode: every value drawn in boundary mode is a
// boundary of the draw range, both range extremes actually occur, and the
// stream is deterministic per seed.
func TestTrafficGenBoundaryMode(t *testing.T) {
	const max = 1000
	g, err := NewTrafficGenMode(11, 3, phv.Default32, max, TrafficBoundary)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[phv.Value]bool{0: true, 1: true, max - 1: true}
	seen := map[phv.Value]int{}
	for i := 0; i < 200; i++ {
		p := g.Next()
		for _, v := range p.Raw() {
			if !allowed[v] {
				t.Fatalf("boundary mode drew %d (allowed %v)", v, allowed)
			}
			seen[v]++
		}
	}
	if seen[0] == 0 || seen[max-1] == 0 {
		t.Fatalf("extremes missing from boundary stream: %v", seen)
	}

	g1, _ := NewTrafficGenMode(42, 2, phv.Default32, 0, TrafficBoundary)
	g2, _ := NewTrafficGenMode(42, 2, phv.Default32, 0, TrafficBoundary)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		for c := range a.Raw() {
			if a.Raw()[c] != b.Raw()[c] {
				t.Fatalf("boundary stream not deterministic at packet %d", i)
			}
		}
	}
}

// TestTrafficGenBoundaryFullWidth: at full datapath width the maximal
// boundary value is the all-ones container pattern.
func TestTrafficGenBoundaryFullWidth(t *testing.T) {
	g, err := NewTrafficGenMode(3, 1, phv.Default32, 0, TrafficBoundary)
	if err != nil {
		t.Fatal(err)
	}
	mask := phv.Default32.Mask()
	sawAllOnes := false
	for i := 0; i < 100; i++ {
		v := g.Next().Raw()[0]
		if v != 0 && v != 1 && v != mask {
			t.Fatalf("full-width boundary mode drew %d", v)
		}
		sawAllOnes = sawAllOnes || v == mask
	}
	if !sawAllOnes {
		t.Fatal("all-ones pattern never drawn")
	}
}

// TestTrafficGenModeValidation: unknown modes error, the empty mode is
// uniform, and uniform mode matches NewTrafficGen exactly.
func TestTrafficGenModeValidation(t *testing.T) {
	if _, err := NewTrafficGenMode(1, 1, phv.Default32, 0, "chaotic"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	gEmpty, err := NewTrafficGenMode(9, 2, phv.Default32, 100, "")
	if err != nil {
		t.Fatal(err)
	}
	gUniform := NewTrafficGen(9, 2, phv.Default32, 100)
	for i := 0; i < 50; i++ {
		a, b := gEmpty.Next(), gUniform.Next()
		for c := range a.Raw() {
			if a.Raw()[c] != b.Raw()[c] {
				t.Fatal("empty mode does not match uniform")
			}
		}
	}
}
