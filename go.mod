module druzhba

go 1.24
