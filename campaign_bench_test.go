// BenchmarkCampaign tracks the dfarm engine's scaling: the same Table-1
// campaign run with one worker and with all cores. The PHVs/sec metric is
// the campaign's aggregate fuzzing throughput; on a machine with ≥4 cores
// the all-cores variant should exceed 2x the single-worker one, since
// shards are embarrassingly parallel over cloned pipelines.
//
// Run with:
//
//	go test -bench BenchmarkCampaign -benchmem
package druzhba_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"druzhba/internal/campaign"
	"druzhba/internal/core"
	"druzhba/internal/spec"
)

func campaignJobs(b *testing.B, packets int) []campaign.Job {
	b.Helper()
	jobs, err := campaign.Matrix(spec.All(), []core.OptLevel{core.SCCInlining}, nil, nil, packets)
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

func BenchmarkCampaign(b *testing.B) {
	packets := benchPHVs(b) / 5
	if packets < 1000 {
		packets = 1000
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			jobs := campaignJobs(b, packets)
			b.ResetTimer()
			var phvs int64
			for i := 0; i < b.N; i++ {
				rep, err := campaign.Run(context.Background(), jobs, campaign.Options{
					Workers:   workers,
					ShardSize: 1024,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Passed {
					b.Fatalf("campaign failed:\n%s", rep.Text(false))
				}
				phvs += rep.TotalChecked
			}
			b.StopTimer()
			b.ReportMetric(float64(phvs)/b.Elapsed().Seconds(), "PHVs/sec")
		})
	}
}

// BenchmarkCampaignShardOverhead isolates the per-shard fixed cost (clone,
// spec construction, trace allocation) by sweeping shard sizes over one
// job's fixed packet budget.
func BenchmarkCampaignShardOverhead(b *testing.B) {
	bm, err := spec.Lookup("stateful-firewall")
	if err != nil {
		b.Fatal(err)
	}
	packets := benchPHVs(b) / 5
	if packets < 1000 {
		packets = 1000
	}
	for _, shard := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("shard=%d", shard), func(b *testing.B) {
			jobs, err := campaign.Matrix([]*spec.Benchmark{bm}, []core.OptLevel{core.SCCInlining}, nil, nil, packets)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := campaign.Run(context.Background(), jobs, campaign.Options{
					Workers:   runtime.GOMAXPROCS(0),
					ShardSize: shard,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Passed {
					b.Fatalf("campaign failed:\n%s", rep.Text(false))
				}
			}
		})
	}
}
