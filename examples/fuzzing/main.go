// Fuzzing walks the full compiler-testing workflow of Fig. 5 of the paper
// on the sampling program (Fig. 1): a compiler-produced machine code
// program and a high-level Domino specification receive the same random
// input trace, and the output traces are compared.
//
// The example then injects a compiler bug — the sampling period constant is
// miscompiled from 9 to 8 — and shows the fuzzer catching the mismatch.
package main

import (
	"fmt"
	"log"

	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

func main() {
	bench, err := spec.Lookup("sampling")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("high-level program (Domino):")
	fmt.Println(bench.DominoSrc)

	// The "compiler output": machine code for the 2x1 if_else_raw pipeline.
	code, err := bench.MachineCode()
	if err != nil {
		log.Fatal(err)
	}
	hw, err := bench.Spec()
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := core.Build(hw, code, core.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}

	// The specification: the Domino program interpreted directly.
	prog, err := bench.DominoProgram()
	if err != nil {
		log.Fatal(err)
	}
	target, err := domino.NewPHVSpec(prog, bench.Fields, phv.Default32)
	if err != nil {
		log.Fatal(err)
	}
	containers, err := bench.CompareContainers()
	if err != nil {
		log.Fatal(err)
	}

	report, err := sim.FuzzRandom(pipeline, target, 7, 50000, 0, sim.FuzzOptions{Containers: containers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct machine code:", report)

	// Now the buggy compiler: the sampling period lands as 8 instead of 9.
	buggy := code.Clone()
	buggy.Set("pipeline_stage_0_stateful_alu_0_const_0", 8)
	buggyPipe, err := core.Build(hw, buggy, core.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}
	report, err = sim.FuzzRandom(buggyPipe, target, 7, 50000, 0, sim.FuzzOptions{Containers: containers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("buggy machine code:  ", report)
	if report.Passed {
		log.Fatal("the fuzzer failed to catch the injected bug")
	}
	fmt.Println("\nthe injected miscompilation was caught by trace comparison")
}
