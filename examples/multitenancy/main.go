// The multitenancy example demonstrates §7's last future-work direction:
// "adding hardware support for multitenancy". One physical 2x2 pipeline is
// space-partitioned between two tenants; each tenant programs its own
// virtual 2x1 pipeline as if it owned the hardware. The tenancy layer
// relocates both machine code programs onto the physical pipeline, merges
// them, audits the merge for cross-tenant reads and writes, and then each
// tenant's slice is fuzz-tested against that tenant's own specification on
// the shared simulator.
//
// Run with: go run ./examples/multitenancy
package main

import (
	"fmt"
	"log"

	"druzhba/internal/atoms"
	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/machinecode"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
	"druzhba/internal/tenancy"
)

func main() {
	// The physical switch: 2 stages, 2 ALUs of each kind per stage, 2 PHV
	// containers.
	part := &tenancy.Partition{
		Physical: core.Spec{
			Depth: 2, Width: 2, PHVLen: 2,
			StatelessALU: atoms.MustLoad("stateless_full"),
			StatefulALU:  atoms.MustLoad("if_else_raw"),
		},
		Tenants: []tenancy.Tenant{
			{Name: "alice", SlotLo: 0, SlotHi: 1, Containers: []int{0}},
			{Name: "bob", SlotLo: 1, SlotHi: 2, Containers: []int{1}},
		},
	}
	if err := part.Validate(); err != nil {
		log.Fatal(err)
	}
	for _, t := range part.Tenants {
		vs, _ := part.VirtualSpec(t.Name)
		fmt.Printf("%-5s owns ALU slots [%d,%d) and containers %v -> virtual %dx%d pipeline\n",
			t.Name, t.SlotLo, t.SlotHi, t.Containers, vs.Depth, vs.Width)
	}

	// Both tenants deploy the Table 1 "sampling" program — compiled
	// against their own virtual pipelines, oblivious of each other.
	bm, err := spec.Lookup("sampling")
	if err != nil {
		log.Fatal(err)
	}
	virtualCode, err := bm.MachineCode()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := bm.DominoProgram()
	if err != nil {
		log.Fatal(err)
	}

	merged, err := part.Merge(map[string]*machinecode.Program{
		"alice": virtualCode,
		"bob":   virtualCode.Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged machine code: %d pairs for the shared pipeline\n", merged.Len())

	// The isolation audit: no tenant reads or writes across the partition.
	if viol := part.CheckIsolation(merged); len(viol) != 0 {
		log.Fatalf("merge violates isolation: %v", viol[0])
	}
	fmt.Println("isolation audit:     clean")

	// One shared simulator runs both tenants' traffic; each tenant's
	// containers are checked against that tenant's own specification.
	pipe, err := core.Build(part.Physical, merged, core.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}
	for _, tenant := range []string{"alice", "bob"} {
		pf, err := part.PhysicalFieldMap(tenant, bm.Fields)
		if err != nil {
			log.Fatal(err)
		}
		dspec, err := domino.NewPHVSpec(prog, pf, pipe.Bits())
		if err != nil {
			log.Fatal(err)
		}
		containers, err := domino.WrittenContainers(prog, pf)
		if err != nil {
			log.Fatal(err)
		}
		pipe.ResetState()
		rep, err := sim.FuzzRandom(pipe, dspec, 42, 20000, 0, sim.FuzzOptions{Containers: containers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s slice:         %v\n", tenant, rep)
	}

	// Finally, what the audit is for: a malicious (or miscompiled) bob
	// pointing an operand mux at alice's container is caught before
	// deployment.
	evil := merged.Clone()
	evil.Set(machinecode.OperandMuxName(0, true, 1, 0), 0)
	viol := part.CheckIsolation(evil)
	fmt.Printf("\nplanted cross-read:  %d violation(s); first: %v\n", len(viol), viol[0])
}
