// Debugger demonstrates §7's time-travel debugging direction: a sampling
// pipeline is simulated with full history recording, a scripted session
// rewinds and fast-forwards through the ticks, watches the counter state
// evolve, and uses a state breakpoint to find the first sampled packet.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"druzhba/internal/core"
	"druzhba/internal/debug"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

func main() {
	bench, err := spec.Lookup("sampling")
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := bench.Pipeline(core.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}
	gen := sim.NewTrafficGen(1, pipeline.PHVLen(), pipeline.Bits(), 100)
	session, err := debug.NewSession(pipeline, gen.Trace(25))
	if err != nil {
		log.Fatal(err)
	}

	// Drive the REPL with a script; ddbg runs the same loop interactively.
	script := strings.Join([]string{
		"state",  // counter after tick 0
		"goto 9", // travel forward
		"state",  // counter mid-run
		"back",   // rewind one tick (bi-directional travel)
		"state",
		"watch 0 0 0",   // the counter across all ticks
		"goto 0",        //
		"break 0 0 0 0", // first tick where the counter wrapped to 0
		"slots",         // pipeline occupancy at the breakpoint
		"phv 9",         // the sampled packet
		"quit",
	}, "\n")
	fmt.Println("scripted time-travel session over the sampling pipeline:")
	fmt.Println()
	if err := debug.REPL(session, strings.NewReader(script), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
