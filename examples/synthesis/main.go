// Synthesis demonstrates the Chipmunk-substitute compiler of the paper's
// §5.2 case study: a Domino packet transaction is compiled to Druzhba
// machine code by CEGIS over the pipeline's holes, validated by fuzzing,
// and the case study's low-bit-width failure mode is reproduced: a
// specification whose threshold no sketch immediate can express synthesizes
// "successfully" at 2-bit inputs but fails once container values exceed the
// synthesis range.
package main

import (
	"fmt"
	"log"

	"druzhba"
)

func main() {
	// 1. A running sum on a 1x1 pipeline with the raw atom.
	sumCfg := druzhba.Config{Depth: 1, Width: 1, StatefulAtom: "raw"}
	sumSpec, err := druzhba.ParseDominoSpec(`
state s = 0;

transaction {
    s = s + pkt.v;
    pkt.v = s;
}
`, map[string]int{"v": 0}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := druzhba.Synthesize(sumCfg, sumSpec, druzhba.SynthesizeOptions{Seed: 3, MaxIters: 150000})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatalf("running sum: synthesis failed after %d iterations", res.Iterations)
	}
	fmt.Printf("running sum: synthesized in %d iterations, %d CEGIS round(s)\n", res.Iterations, res.CEGISRounds)
	fmt.Println("machine code:")
	fmt.Print(res.Code.String())

	// Validate the result on wide inputs via fuzzing.
	pipe, err := druzhba.BuildPipeline(sumCfg, res.Code, druzhba.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := druzhba.FuzzPipeline(pipe, sumSpec, 11, 10000, 1<<16, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("16-bit validation:", rep)

	// 2. The §5.2 failure mode: out = (v >= 100) cannot be expressed with
	// the sketch's small immediates, so 2-bit synthesis accepts machine
	// code that is wrong for large values.
	geCfg := druzhba.Config{Depth: 1, Width: 1}
	geSpec, err := druzhba.ParseDominoSpec(`
transaction {
    if (pkt.v >= 100) {
        pkt.v = 1;
    } else {
        pkt.v = 0;
    }
}
`, map[string]int{"v": 0}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err = druzhba.Synthesize(geCfg, geSpec, druzhba.SynthesizeOptions{Seed: 4, VerifyBits: 2, MaxIters: 60000})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatalf("ge-100: synthesis unexpectedly failed")
	}
	fmt.Printf("\nge-100: synthesis at 2-bit inputs succeeded (%d iterations)\n", res.Iterations)
	pipe, err = druzhba.BuildPipeline(geCfg, res.Code, druzhba.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}
	rep, err = druzhba.FuzzPipeline(pipe, geSpec, 12, 2000, 1<<10, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("10-bit validation:", rep)
	if rep.Passed {
		log.Fatal("expected the low-bit-width failure mode")
	}
	fmt.Println("\nthe synthesized machine code only satisfies a limited range of values (§5.2)")
}
