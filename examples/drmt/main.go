// DRMT runs a small IPv4 router program through the dRMT model of §4 of the
// paper: the mini-P4 program is parsed, its table dependency DAG extracted,
// matches and actions scheduled onto four match+action processors (both
// greedily and optimally), the centralized tables populated from the
// entries configuration format, and random packets simulated.
package main

import (
	"fmt"
	"log"

	"druzhba/internal/drmt"
	"druzhba/internal/p4"
)

const routerP4 = `
header_type ipv4_t {
    fields {
        srcAddr : 32;
        dstAddr : 32;
        ttl : 8;
        tos : 8;
    }
}
header ipv4_t ipv4;

register r_count {
    width : 32;
    instance_count : 8;
}

action set_tos(v) {
    modify_field(ipv4.tos, v);
}

action decrement_ttl() {
    add_to_field(ipv4.ttl, -1);
}

action count_dst() {
    register_add(r_count, ipv4.dstAddr, 1);
}

action deny() {
    drop();
}

table classify {
    reads { ipv4.srcAddr : ternary; }
    actions { set_tos; deny; }
    default_action : set_tos(0);
}

table route {
    reads { ipv4.dstAddr : exact; }
    actions { decrement_ttl; deny; }
    default_action : decrement_ttl();
}

table audit {
    reads { ipv4.tos : exact; }
    actions { count_dst; }
    default_action : count_dst();
}

control ingress {
    apply(classify);
    apply(route);
    apply(audit);
}
`

const routerEntries = `
# block ttl-expired sources in 10.0.0.0/8, prioritize the rest of 10/8
classify ipv4.srcAddr ternary 0x0A000000/0xFF000000 set_tos(7)
route ipv4.dstAddr exact 99 deny()
audit ipv4.tos exact 7 count_dst()
`

func main() {
	prog, err := p4.Parse(routerP4)
	if err != nil {
		log.Fatal(err)
	}
	g, err := p4.BuildDAG(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("table dependency DAG:")
	fmt.Print(g.String())

	hw := drmt.HWConfig{Processors: 4, DeltaMatch: 18, DeltaAction: 2, MatchCapacity: 8, ActionCapacity: 32}
	costs := drmt.DefaultCosts(g)
	greedy, err := drmt.ListSchedule(g, costs, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngreedy schedule:")
	fmt.Print(drmt.FormatSchedule(greedy))

	optimal, err := drmt.OptimalSchedule(g, costs, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbranch-and-bound schedule:")
	fmt.Print(drmt.FormatSchedule(optimal))

	entries, err := drmt.ParseEntriesString(routerEntries, prog)
	if err != nil {
		log.Fatal(err)
	}
	m, err := drmt.NewMachine(prog, entries, hw, optimal)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := drmt.NewTrafficGen(1, prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := m.Run(gen.Batch(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulation of 1000 random packets:")
	fmt.Print(drmt.FormatStats(stats))
	cells, _ := m.Register("r_count")
	fmt.Printf("r_count register: %v\n", cells)
}
