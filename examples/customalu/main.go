// Customalu shows Druzhba acting as "a family of simulators, one for each
// possible pipeline configuration" (§3.1): a new stateful ALU — an
// exponentially-weighted moving average unit that no stock atom provides —
// is defined in the ALU DSL at runtime, instantiated into a pipeline, and
// fuzz-tested against its Domino specification.
package main

import (
	"fmt"
	"log"

	"druzhba/internal/aludsl"
	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
)

// An EWMA ALU: state_0 <- (state_0 + sample)/2 when enabled, with the
// sample selected by a mux. (A real switch would use a shift, division by
// two is the same here.)
const ewmaALU = `
type: stateful
state variables: {state_0}
hole variables: {}
packet fields: {pkt_0, pkt_1}
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = (state_0 + Mux3(pkt_0, pkt_1, C())) / 2;
}
return state_0;
`

func main() {
	alu, err := aludsl.Parse(ewmaALU)
	if err != nil {
		log.Fatal(err)
	}
	alu.Name = "ewma"
	fmt.Printf("custom ALU %q: %d operands, %d state variable(s), %d machine code holes\n",
		alu.Name, alu.NumOperands(), alu.NumState(), len(alu.Holes))

	spec := core.Spec{
		Depth:        1,
		Width:        1,
		StatelessALU: mustAtom("stateless_full"),
		StatefulALU:  alu,
	}
	req, err := spec.RequiredPairs()
	if err != nil {
		log.Fatal(err)
	}
	code := machinecode.New()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	// Always-true predicate (0 >= 0), sample = pkt_0, output = EWMA.
	set := func(hole string, v int64) {
		code.Set(machinecode.ALUHoleName(0, true, 0, hole), v)
	}
	set("rel_op_0", 2) // >=
	set("opt_0", 1)    // 0
	set("mux3_0", 2)   // C()
	set("const_0", 0)
	set("mux3_1", 0) // sample = pkt_0
	code.Set(machinecode.OperandMuxName(0, true, 0, 0), 0)
	code.Set(machinecode.OutputMuxName(0, 0), 2)

	pipeline, err := core.Build(spec, code, core.SCCInlining)
	if err != nil {
		log.Fatal(err)
	}

	// The specification in Domino.
	prog, err := domino.Parse(`
state avg = 0;

transaction {
    avg = (avg + pkt.sample) / 2;
    pkt.sample = avg;
}
`)
	if err != nil {
		log.Fatal(err)
	}
	prog.Name = "ewma"
	target, err := domino.NewPHVSpec(prog, domino.FieldMap{"sample": 0}, phv.Default32)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sim.FuzzRandom(pipeline, target, 9, 50000, 1<<20, sim.FuzzOptions{Containers: []int{0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// Show a short trace for intuition.
	pipeline.ResetState()
	gen := sim.NewTrafficGen(4, 1, phv.Default32, 1000)
	res, err := sim.Run(pipeline, gen.Trace(8))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Input.Len(); i++ {
		fmt.Printf("sample %-6d -> ewma %d\n", res.Input.At(i).Get(0), res.Output.At(i).Get(0))
	}
}

func mustAtom(name string) *aludsl.Program {
	p, err := aludsl.Parse(statelessFullSrc)
	if err != nil {
		log.Fatal(err)
	}
	p.Name = name
	return p
}

// statelessFullSrc mirrors atoms.StatelessFullSrc; examples avoid importing
// the atom library to show a fully self-supplied hardware description.
const statelessFullSrc = `
type: stateless
packet fields: {pkt_0, pkt_1}
return alu_op(Mux3(pkt_0, pkt_1, C()), Mux3(pkt_0, pkt_1, C()));
`
