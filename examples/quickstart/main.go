// Quickstart: build a 2-stage, 2-wide Druzhba pipeline whose machine code
// computes a running sum of container 0 and mirrors it into container 1,
// simulate a short random trace at every optimization level, and print the
// output traces.
package main

import (
	"fmt"
	"log"
	"strings"

	"druzhba"
)

func main() {
	cfg := druzhba.Config{Depth: 2, Width: 2, StatefulAtom: "raw"}

	// Every pipeline primitive needs a machine code pair; start from the
	// identity configuration (all zeros: output muxes pass through).
	req, err := druzhba.RequiredPairs(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	for _, h := range req {
		fmt.Fprintf(&b, "%s = 0\n", h.Name)
	}
	// Stage 0: stateful ALU 0 (raw atom) accumulates container 0 into its
	// state and writes the sum back to container 0.
	b.WriteString(`
pipeline_stage_0_stateful_alu_0_operand_mux_0 = 0  # operand <- container 0
pipeline_stage_0_stateful_alu_0_mux2_0 = 0         # state += packet operand
pipeline_stage_0_output_mux_phv_0 = 3              # container 0 <- stateful ALU 0
# Stage 1: stateless ALU 0 copies container 0 into container 1.
pipeline_stage_1_stateless_alu_0_operand_mux_0 = 0
pipeline_stage_1_stateless_alu_0_alu_op_0 = 13     # pass first operand
pipeline_stage_1_stateless_alu_0_mux3_0 = 0
pipeline_stage_1_output_mux_phv_1 = 1              # container 1 <- stateless ALU 0
`)
	code, err := druzhba.ParseMachineCode(strings.NewReader(b.String()))
	if err != nil {
		log.Fatal(err)
	}

	for _, level := range []druzhba.OptLevel{druzhba.Unoptimized, druzhba.SCCPropagation, druzhba.SCCInlining} {
		pipe, err := druzhba.BuildPipeline(cfg, code, level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := druzhba.Simulate(pipe, 42, 6, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- level %s: %d PHVs in %d ticks ---\n", level, res.Output.Len(), res.Ticks)
		for i := 0; i < res.Input.Len(); i++ {
			fmt.Printf("  in %-12s -> out %s\n", res.Input.At(i), res.Output.At(i))
		}
		fmt.Printf("  final state: %s\n", res.FinalState)
	}
}
