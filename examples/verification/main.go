// The verification example walks the §7 future-work direction end to end:
// formally proving compiler-generated machine code equivalent to its
// high-level specification, instead of (only) fuzzing it.
//
// It builds the same flowlet-sampling pipeline the quickstart fuzzes, then:
//
//  1. proves the correct machine code equivalent to the Domino spec for
//     every 5-bit input over 3 consecutive transactions;
//  2. plants a compiler bug (the wrong relational opcode) and shows the
//     verifier return a concrete counterexample input trace;
//  3. reproduces the paper's §5.2 failure class — machine code valid only
//     for a limited range of inputs — which fuzzing at small values would
//     miss but the verifier finds instantly at 10 bits, and shows how an
//     input constraint (§7's "PHV and state value constraints") turns the
//     same code provably correct on its intended domain.
//
// Run with: go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"druzhba"
)

const samplingSpec = `
state count = 0;

transaction {
    if (count == 9) {
        count = 0;
        pkt.sample = 1;
    } else {
        count = count + 1;
        pkt.sample = 0;
    }
}
`

func main() {
	cfg := druzhba.Config{Depth: 2, Width: 1, StatefulAtom: "if_else_raw"}
	fields := map[string]int{"sample": 0}

	// The hand-mapped machine code for the sampling transaction — the
	// artifact a compiler targeting Druzhba's instruction set emits.
	code := samplingMachineCode(cfg)

	// 1. Prove the mapping correct: every 5-bit input, 3 transactions.
	res, err := druzhba.Prove(cfg, code, samplingSpec, fields, druzhba.VerifyOptions{
		Bits: 5, Steps: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct machine code: ", res)

	// 2. Plant a compiler bug: rel_op != instead of ==. Fuzzing finds
	// this quickly too, but the verifier both finds it and would have
	// proven its absence.
	buggy := code.Clone()
	buggy.Set("pipeline_stage_0_stateful_alu_0_rel_op_0", 1)
	res, err = druzhba.Prove(cfg, buggy, samplingSpec, fields, druzhba.VerifyOptions{
		Bits: 5, Steps: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planted rel_op bug:   ", res)

	// 3. The §5.2 failure class: machine code correct only for a limited
	// input range. The spec is the identity on pkt.a; the machine code
	// computes pkt.a && pkt.a, which equals pkt.a only on {0,1} — the
	// artifact of a synthesizer that verified at 1-bit width.
	idCfg := druzhba.Config{Depth: 1, Width: 1}
	idCode := identityAndCode(idCfg)
	idSpec := `transaction { pkt.a = pkt.a; }`
	idFields := map[string]int{"a": 0}

	res, err = druzhba.Prove(idCfg, idCode, idSpec, idFields, druzhba.VerifyOptions{
		Bits: 1, Steps: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("range-limited @1 bit: ", res)

	res, err = druzhba.Prove(idCfg, idCode, idSpec, idFields, druzhba.VerifyOptions{
		Bits: 10, Steps: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("range-limited @10 bit:", res)

	// §7's "PHV and state value constraints": on its intended domain the
	// code is provably correct even at 10 bits.
	res, err = druzhba.Prove(idCfg, idCode, idSpec, idFields, druzhba.VerifyOptions{
		Bits: 10, Steps: 2, MaxInput: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("with input constraint:", res)
}

// samplingMachineCode maps the sampling transaction onto a 2x1 pipeline of
// if_else_raw atoms: stage 0 implements the wrap-around counter, stage 1
// converts "counter wrapped" into the 0/1 sample flag.
func samplingMachineCode(cfg druzhba.Config) *druzhba.MachineCode {
	code := defaultPairs(cfg)
	set := func(name string, v int64) { code.Set(name, v) }
	// Stage 0 stateful ALU: if (count == 9) count = 0 else count = count+1.
	set("pipeline_stage_0_stateful_alu_0_rel_op_0", 0) // ==
	set("pipeline_stage_0_stateful_alu_0_opt_0", 0)    // pass state
	set("pipeline_stage_0_stateful_alu_0_mux3_0", 2)   // compare against C()
	set("pipeline_stage_0_stateful_alu_0_const_0", 9)
	set("pipeline_stage_0_stateful_alu_0_opt_1", 1)  // then: 0 + ...
	set("pipeline_stage_0_stateful_alu_0_mux3_1", 2) // ... C()
	set("pipeline_stage_0_stateful_alu_0_const_1", 0)
	set("pipeline_stage_0_stateful_alu_0_opt_2", 0)  // else: count + ...
	set("pipeline_stage_0_stateful_alu_0_mux3_2", 2) // ... C()
	set("pipeline_stage_0_stateful_alu_0_const_2", 1)
	set("pipeline_stage_0_output_mux_phv_0", 2) // container 0 <- stateful out
	// Stage 1 stateless ALU: sample = (counter_out == 0).
	set("pipeline_stage_1_stateless_alu_0_alu_op_0", 5) // Eq
	set("pipeline_stage_1_stateless_alu_0_mux3_0", 0)   // operand A = pkt
	set("pipeline_stage_1_stateless_alu_0_mux3_1", 2)   // operand B = C()
	set("pipeline_stage_1_stateless_alu_0_const_1", 0)
	set("pipeline_stage_1_output_mux_phv_0", 1) // container 0 <- stateless out
	return code
}

// identityAndCode programs a 1x1 stateless pipeline to compute
// pkt.a && pkt.a.
func identityAndCode(cfg druzhba.Config) *druzhba.MachineCode {
	code := defaultPairs(cfg)
	code.Set("pipeline_stage_0_stateless_alu_0_alu_op_0", 11) // logical and
	code.Set("pipeline_stage_0_output_mux_phv_0", 1)          // stateless out
	return code
}

// defaultPairs fills every required machine code pair with 0 (operand
// muxes select container 0, output muxes pass through).
func defaultPairs(cfg druzhba.Config) *druzhba.MachineCode {
	req, err := druzhba.RequiredPairs(cfg)
	if err != nil {
		log.Fatal(err)
	}
	code := druzhba.NewMachineCode()
	for _, h := range req {
		code.Set(h.Name, 0)
	}
	return code
}
