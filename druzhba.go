// Package druzhba is a programmable switch simulator for testing compilers
// that target high speed programmable packet-processing substrates, a Go
// reproduction of "Testing Compilers for Programmable Switches Through
// Switch Hardware Simulation" (Wong, Varma, Sivaraman, 2020).
//
// Druzhba models the low-level hardware primitives of an RMT-style switch
// pipeline — PHV containers, input multiplexers, stateless and stateful
// ALUs expressed in an ALU DSL, and output multiplexers — and executes
// machine code programs (name -> integer pairs) against that model. A
// compiler targeting the instruction set is tested by fuzzing: random PHVs
// flow through both the simulated pipeline and a high-level specification,
// and the output traces are compared (Fig. 5 of the paper).
//
// The package is a thin facade over the internal packages:
//
//	internal/aludsl       the ALU DSL (Fig. 3/4)
//	internal/atoms        the Banzai atom library (6 stateful + 5 stateless)
//	internal/machinecode  machine code pairs and the naming convention
//	internal/core         the RMT machine model and its three engines
//	internal/opt          SCC propagation and function inlining (Fig. 6)
//	internal/codegen      dgen's Go source emission
//	internal/sim          dsim: tick simulation, traffic gen, fuzzing
//	internal/campaign     dfarm: parallel fuzzing campaigns over job matrices
//	internal/verify       dverify: SAT-based bounded equivalence proofs (§7)
//	internal/farmd        dfarmd: the campaign daemon and its shard caches
//	internal/domino       the mini-Domino frontend (specs)
//	internal/spec         the 12 Table-1 benchmark programs
//	internal/synth        the Chipmunk-substitute synthesis compiler
//	internal/p4 + drmt    the dRMT model (§4)
//
// # Quick start
//
//	spec := druzhba.Config{Depth: 2, Width: 1, StatefulAtom: "if_else_raw"}
//	pipe, err := druzhba.BuildPipeline(spec, code, druzhba.SCCInlining)
//	report, err := druzhba.FuzzPipeline(pipe, mySpec, 42, 50000, 0, nil)
package druzhba

import (
	"context"
	"fmt"
	"io"
	"time"

	"druzhba/internal/atoms"
	"druzhba/internal/campaign"
	"druzhba/internal/codegen"
	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/fabric"
	"druzhba/internal/farmd"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
	"druzhba/internal/synth"
	"druzhba/internal/verify"
)

// OptLevel re-exports the pipeline-generation optimization levels.
type OptLevel = core.OptLevel

// Optimization levels: the paper's three (Fig. 6) plus the closure-compiled
// engine, which plays the role the Rust compiler plays for the paper's
// generated pipeline descriptions without leaving the process.
const (
	Unoptimized    = core.Unoptimized
	SCCPropagation = core.SCCPropagation
	SCCInlining    = core.SCCInlining
	Compiled       = core.Compiled
)

// AllLevels lists every optimization level in increasing order — the
// paper's three plus Compiled, the full matrix axis swept by campaigns.
func AllLevels() []OptLevel { return core.AllLevels() }

// Pipeline is an executable pipeline description.
type Pipeline = core.Pipeline

// MachineCode is a machine code program: ordered name -> value pairs.
type MachineCode = machinecode.Program

// FuzzReport is the outcome of a fuzzing session.
type FuzzReport = sim.FuzzReport

// Spec is a high-level specification consumed by the fuzzer.
type Spec = sim.Spec

// Config describes the simulated hardware: pipeline dimensions and the
// names of the ALU DSL atoms instantiated in every stage.
type Config struct {
	Depth int // pipeline stages
	Width int // ALUs of each kind per stage

	// PHVLen is the number of PHV containers (0 = Width).
	PHVLen int

	// Bits is the datapath bit width (0 = 32).
	Bits int

	// StatefulAtom names the stateful ALU from the atom library
	// (empty = no stateful ALUs). See AtomNames.
	StatefulAtom string

	// StatelessAtom names the stateless ALU (empty = "stateless_full").
	StatelessAtom string
}

// coreSpec lowers a Config to the internal representation.
func (c Config) coreSpec() (core.Spec, error) {
	s := core.Spec{Depth: c.Depth, Width: c.Width, PHVLen: c.PHVLen}
	if c.Bits != 0 {
		w, err := phv.NewWidth(c.Bits)
		if err != nil {
			return s, err
		}
		s.Bits = w
	}
	statelessName := c.StatelessAtom
	if statelessName == "" {
		statelessName = "stateless_full"
	}
	stateless, err := atoms.Load(statelessName)
	if err != nil {
		return s, err
	}
	s.StatelessALU = stateless
	if c.StatefulAtom != "" {
		stateful, err := atoms.Load(c.StatefulAtom)
		if err != nil {
			return s, err
		}
		s.StatefulALU = stateful
	}
	return s, nil
}

// AtomNames lists the ALU atoms available to Config, sorted.
func AtomNames() []string { return atoms.Names() }

// ParseMachineCode reads a machine code file ("name = value" lines).
func ParseMachineCode(r io.Reader) (*MachineCode, error) {
	return machinecode.Parse(r)
}

// NewMachineCode returns an empty machine code program.
func NewMachineCode() *MachineCode { return machinecode.New() }

// BuildPipeline compiles a hardware config and machine code into an
// executable pipeline at the given optimization level (dgen, §3.1-3.2).
func BuildPipeline(cfg Config, code *MachineCode, level OptLevel) (*Pipeline, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return nil, err
	}
	return core.Build(s, code, level)
}

// RequiredPairs lists every machine code pair the config's pipeline needs,
// with its valid value count (0 = unbounded immediate).
func RequiredPairs(cfg Config) ([]core.HoleSpec, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return nil, err
	}
	return s.RequiredPairs()
}

// ValidateMachineCode reports every missing or out-of-range pair.
func ValidateMachineCode(cfg Config, code *MachineCode) ([]error, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return nil, err
	}
	return s.Validate(code), nil
}

// GeneratePipelineSource emits the pipeline description as Go source text
// (dgen's output; Fig. 6 shows the three shapes).
func GeneratePipelineSource(cfg Config, code *MachineCode, level OptLevel, pkg string) (string, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return "", err
	}
	return codegen.Generate(s, code, codegen.Options{Level: level, Package: pkg})
}

// Simulate runs n random PHVs (from a seeded traffic generator bounded by
// maxValue; 0 = full range) through the pipeline and returns the simulation
// result with input and output traces (dsim, §3.3).
func Simulate(p *Pipeline, seed int64, n int, maxValue int64) (*sim.Result, error) {
	gen := sim.NewTrafficGen(seed, p.PHVLen(), p.Bits(), maxValue)
	return sim.Run(p, gen.Trace(n))
}

// ParseDominoSpec parses a mini-Domino program and binds its packet fields
// to PHV containers, yielding a specification for fuzzing.
func ParseDominoSpec(src string, fields map[string]int, bits int) (Spec, error) {
	prog, err := domino.Parse(src)
	if err != nil {
		return nil, err
	}
	w := phv.Default32
	if bits != 0 {
		w, err = phv.NewWidth(bits)
		if err != nil {
			return nil, err
		}
	}
	return domino.NewPHVSpec(prog, domino.FieldMap(fields), w)
}

// FuzzPipeline runs the Fig. 5 compiler-testing workflow: n random PHVs
// through the pipeline and the specification, comparing outputs on the
// given containers (nil = all).
func FuzzPipeline(p *Pipeline, spec Spec, seed int64, n int, maxValue int64, containers []int) (*FuzzReport, error) {
	return sim.FuzzRandom(p, spec, seed, n, maxValue, sim.FuzzOptions{Containers: containers})
}

// CampaignJob is one cell of a campaign matrix: an architecture-specific
// target under test (an RMT pipeline against a high-level specification,
// or a dRMT ISA machine against the interpreted mini-P4 semantics) plus
// the traffic that tests it.
type CampaignJob = campaign.Job

// CampaignOptions configures a campaign run (worker pool size, shard size,
// counterexample cap, fail-fast).
type CampaignOptions = campaign.Options

// CampaignReport is the merged outcome of a campaign; absent fail-fast it
// is bit-identical for every worker count.
type CampaignReport = campaign.Report

// RunCampaign executes a parallel fuzzing campaign (dfarm): each job's
// pipeline is built once, its packets are sharded into deterministic
// sub-seeded chunks, shards run on a bounded worker pool over cloned
// pipelines, and results merge into a worker-count-independent report. The
// context cancels the whole campaign.
func RunCampaign(ctx context.Context, jobs []CampaignJob, opts CampaignOptions) (*CampaignReport, error) {
	return campaign.Run(ctx, jobs, opts)
}

// Table1Campaign builds the default dfarm job matrix: every Table-1
// benchmark at every optimization level (the paper's three plus Compiled),
// packets PHVs each.
func Table1Campaign(packets int) ([]CampaignJob, error) {
	return campaign.Table1Matrix(packets)
}

// DRMTCampaign builds the default dRMT job matrix (dfarm -arch drmt):
// every registered dRMT benchmark, packets packets each, fuzzing the
// ISA-level machine (§7) against the interpreted mini-P4 semantics (§4).
func DRMTCampaign(packets int) ([]CampaignJob, error) {
	return campaign.DRMTDefaultMatrix(packets)
}

// RunDRMTCampaign executes the default dRMT campaign: DRMTCampaign's job
// matrix under RunCampaign's deterministic sharded engine. The report is
// byte-identical for every worker count.
func RunDRMTCampaign(ctx context.Context, packets int, opts CampaignOptions) (*CampaignReport, error) {
	jobs, err := DRMTCampaign(packets)
	if err != nil {
		return nil, err
	}
	return campaign.Run(ctx, jobs, opts)
}

// VerifyCampaign builds the verification campaign job matrix (dfarm -mode
// verify): one job per Table-1 benchmark, with cells spanning the bits ×
// steps proof grid (empty slices take the campaign defaults). Each cell is
// an independent bounded equivalence proof sharded onto the worker pool;
// maxConflicts bounds solver effort per cell (0 = unlimited).
func VerifyCampaign(bits, steps []int, maxConflicts int64) ([]CampaignJob, error) {
	return campaign.VerifyMatrix(spec.All(), bits, steps, nil, maxConflicts)
}

// RunCampaignMatrix executes every phase of a matrix request (fuzz,
// verify, or both — dfarm's -mode axis) and returns one merged report. In
// both mode verification runs first and its counterexample traces are
// replayed as seed traffic at the start of every fuzz shard.
func RunCampaignMatrix(ctx context.Context, req *CampaignMatrixRequest, opts CampaignOptions) (*CampaignReport, error) {
	return farmd.RunMatrix(ctx, req, opts)
}

// ShardCache is the campaign engine's pluggable content-addressed
// shard-result store: results replay byte-identically into later reports,
// so a warm cache changes counters, never rows.
type ShardCache = campaign.ShardCache

// NewShardCache builds the standard cache stack (dfarmd's): a bounded
// in-memory LRU of memEntries shard results (0 = 4096), tiered over a
// persistent on-disk directory when dir is non-empty.
func NewShardCache(memEntries int, dir string) (ShardCache, error) {
	return NewShardCacheLimit(memEntries, dir, 0)
}

// NewShardCacheLimit is NewShardCache with a byte cap on the on-disk tier:
// past maxDiskBytes the least recently used entry files are evicted, so a
// long-running service's disk footprint stays bounded (0 = unbounded).
func NewShardCacheLimit(memEntries int, dir string, maxDiskBytes int64) (ShardCache, error) {
	mem := farmd.NewMemCache(memEntries)
	if dir == "" {
		return mem, nil
	}
	disk, err := farmd.NewDirCacheLimit(dir, maxDiskBytes)
	if err != nil {
		return nil, err
	}
	return farmd.NewTiered(mem, disk), nil
}

// CampaignServerConfig configures ServeCampaigns (shard cache, per-campaign
// worker pool, concurrent-campaign bound, default per-job timeout).
type CampaignServerConfig = farmd.Config

// CampaignMatrixRequest describes a campaign job matrix as data — the JSON
// protocol of the dfarmd service and the programmatic form of dfarm's
// flags.
type CampaignMatrixRequest = farmd.MatrixRequest

// ServeCampaigns runs the long-running campaign service (dfarmd) on addr
// until ctx is cancelled: clients POST job matrices to /v1/campaigns and
// receive one NDJSON row per job as jobs complete, in matrix order, plus a
// summary row; cfg.Cache replays unchanged shards so resubmitted matrices
// execute nothing.
func ServeCampaigns(ctx context.Context, addr string, cfg CampaignServerConfig) error {
	return farmd.Serve(ctx, addr, cfg, 0)
}

// SubmitCampaign submits a job matrix to a running campaign service and
// reassembles the streamed rows into a report that renders byte-identically
// to an offline RunCampaign of the same matrix (the server's cache and
// timing metadata ride along in Report.Cache/Timing).
func SubmitCampaign(ctx context.Context, serverURL string, req *CampaignMatrixRequest) (*CampaignReport, error) {
	return farmd.Submit(ctx, serverURL, req)
}

// CampaignCoordinatorConfig configures a distributed campaign coordinator
// (worker fleet TTL, lease retry/backoff/poison policy, the shared shard
// store, journal directory, auth token).
type CampaignCoordinatorConfig = fabric.CoordConfig

// CampaignCoordinator is the distributed campaign fabric's control plane
// (dcoord): it splits campaign matrices into shard leases dispatched to
// registered dfarmd workers with retry, backoff and poison quarantine,
// journals every row for resumable streams and restart recovery, serves
// the fleet's shared shard store, and degrades gracefully to local
// execution when the fleet drains — all while streaming reports
// byte-identical to a single-process run.
type CampaignCoordinator = fabric.Coordinator

// NewCampaignCoordinator builds a coordinator and recovers its journal:
// completed campaigns replay from disk, unfinished ones re-run.
func NewCampaignCoordinator(cfg CampaignCoordinatorConfig) (*CampaignCoordinator, error) {
	return fabric.NewCoordinator(cfg)
}

// ServeCampaignCoordinator runs a coordinator on addr until ctx is
// cancelled, then shuts down gracefully: subscriber streams drain,
// producers stop (their campaigns stay journaled for the next process) and
// the shard store's disk tier flushes.
func ServeCampaignCoordinator(ctx context.Context, addr string, c *CampaignCoordinator, drain time.Duration) error {
	return fabric.Serve(ctx, addr, c, drain)
}

// SynthesizeOptions configures Synthesize.
type SynthesizeOptions = synth.Options

// SynthesizeResult is the outcome of a synthesis run.
type SynthesizeResult = synth.Result

// Synthesize searches for machine code implementing the specification on
// the configured hardware (the Chipmunk-substitute compiler of §5.2).
func Synthesize(cfg Config, target Spec, opts SynthesizeOptions) (*SynthesizeResult, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return nil, err
	}
	return synth.Synthesize(s, target, opts)
}

// VerifyOptions configures Prove (bit width, unrolled transactions, input
// constraints, solver budget).
type VerifyOptions = verify.Options

// VerifyResult is the outcome of an equivalence proof: either a proof that
// the machine code matches the specification for every input of the
// verification width, or a concrete counterexample trace.
type VerifyResult = verify.Result

// Prove formally verifies machine code against a mini-Domino specification
// (the §7 direction: "transformed into SMT formulas so that equivalence
// can be formally proven"). Where FuzzPipeline samples random inputs,
// Prove covers every input of the verification bit width exhaustively via
// an internal SAT solver, and returns a counterexample input trace when
// the machine code is wrong.
func Prove(cfg Config, code *MachineCode, dominoSrc string, fields map[string]int, opts VerifyOptions) (*VerifyResult, error) {
	return ProveContext(context.Background(), cfg, code, dominoSrc, fields, opts)
}

// ProveContext is Prove under a context: cancellation (or a deadline)
// interrupts the SAT solve and reports an unknown verdict instead of
// running to completion, so callers can bound proof wall clock.
func ProveContext(ctx context.Context, cfg Config, code *MachineCode, dominoSrc string, fields map[string]int, opts VerifyOptions) (*VerifyResult, error) {
	s, err := cfg.coreSpec()
	if err != nil {
		return nil, err
	}
	prog, err := domino.Parse(dominoSrc)
	if err != nil {
		return nil, err
	}
	return verify.EquivalenceContext(ctx, s, code, prog, domino.FieldMap(fields), opts)
}

// Version identifies the library.
const Version = "1.0.0"

// String renders a Config for logs.
func (c Config) String() string {
	return fmt.Sprintf("pipeline %dx%d (phv=%d, stateful=%s)", c.Depth, c.Width, c.PHVLen, c.StatefulAtom)
}
