package druzhba_test

// Extension benches for the dRMT model (§4): schedule quality and
// simulation throughput across processor counts on the L2/L3 switch
// program. The paper reports no dRMT numbers (its dRMT support was ongoing
// work), so these are characterization benches, not reproductions.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"druzhba/internal/drmt"
	"druzhba/internal/p4"
)

func loadL2L3Bench(b *testing.B) *p4.Program {
	b.Helper()
	src, err := os.ReadFile(filepath.Join("internal", "drmt", "testdata", "l2l3.p4"))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p4.Parse(string(src))
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkDRMTSchedule(b *testing.B) {
	prog := loadL2L3Bench(b)
	g, err := p4.BuildDAG(prog)
	if err != nil {
		b.Fatal(err)
	}
	costs := drmt.DefaultCosts(g)
	for _, procs := range []int{2, 4, 8} {
		procs := procs
		b.Run(fmt.Sprintf("greedy-p%d", procs), func(b *testing.B) {
			hw := drmt.HWConfig{Processors: procs}
			var makespan int
			for i := 0; i < b.N; i++ {
				s, err := drmt.ListSchedule(g, costs, hw)
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(float64(makespan), "makespan-cycles")
		})
		b.Run(fmt.Sprintf("bnb-p%d", procs), func(b *testing.B) {
			hw := drmt.HWConfig{Processors: procs}
			var makespan int
			for i := 0; i < b.N; i++ {
				s, err := drmt.OptimalSchedule(g, costs, hw)
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(float64(makespan), "makespan-cycles")
		})
	}
}

// BenchmarkDRMTDiffFuzz measures the differential fuzzing loop — the dRMT
// campaign hot path — on the slot-compiled streaming engine versus the
// map-based compatibility engine.
func BenchmarkDRMTDiffFuzz(b *testing.B) {
	for _, name := range []string{"l2l3", "wide-fanin"} {
		bm, err := drmt.LookupBenchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := bm.Program()
		if err != nil {
			b.Fatal(err)
		}
		entries, err := bm.Entries(prog)
		if err != nil {
			b.Fatal(err)
		}
		f, err := drmt.NewDiffFuzzer(prog, nil, entries, bm.HW)
		if err != nil {
			b.Fatal(err)
		}
		const packets = 1000
		for _, engine := range []string{"slots", "compat"} {
			engine := engine
			b.Run(name+"/"+engine, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var rep *drmt.DiffReport
					var err error
					if engine == "slots" {
						rep, err = f.FuzzSeeded(1, packets, bm.MaxInput)
					} else {
						rep, err = f.FuzzSeededCompat(1, packets, bm.MaxInput)
					}
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Passed() {
						b.Fatalf("fuzz failed: %+v", rep)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*packets), "ns/PHV")
			})
		}
	}
}

func BenchmarkDRMTSimulate(b *testing.B) {
	prog := loadL2L3Bench(b)
	for _, procs := range []int{1, 4} {
		procs := procs
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			m, err := drmt.NewMachine(prog, drmt.NewEntrySet(), drmt.HWConfig{Processors: procs}, nil)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := drmt.NewTrafficGen(1, prog, 0)
			if err != nil {
				b.Fatal(err)
			}
			packets := gen.Batch(1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ResetState()
				fresh := make([]*drmt.Packet, len(packets))
				for j, p := range packets {
					fresh[j] = p.Clone()
				}
				if _, err := m.Run(fresh); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
