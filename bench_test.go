// Table 1 of the paper: simulation runtime for the twelve packet-processing
// programs, at each optimization level, with 50,000 PHVs from the traffic
// generator per run ("Every RMT benchmark was executed by using 50000 PHVs
// generated from the traffic generator", §5) — plus a fourth column for the
// closure-compiled engine, Druzhba's extension beyond the paper.
//
// Run with:
//
//	go test -bench BenchmarkTable1 -benchmem
//
// One benchmark iteration is one full 50,000-PHV simulation over the
// streaming engine (the campaign hot path); the reported ms/run metric
// corresponds to the milliseconds columns of Table 1 and ns/PHV seeds the
// perf trajectory in BENCH_table1.json. Absolute numbers differ from the
// paper (Go interpreter vs. compiled Rust); the comparisons that matter are
// across the engines: SCC propagation gives the large win, inlining helps
// on every grid, closure compilation removes the remaining interpreter
// dispatch, and the biggest improvements appear on the largest grids
// (stateful firewall, flowlets, learn filter).
package druzhba_test

import (
	"testing"

	"druzhba/internal/core"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

// table1PHVs is the paper's workload size.
const table1PHVs = 50000

func benchPHVs(b *testing.B) int {
	if testing.Short() {
		return 2000
	}
	return table1PHVs
}

func BenchmarkTable1(b *testing.B) {
	for _, bm := range spec.All() {
		bm := bm
		for _, level := range core.AllLevels() {
			level := level
			b.Run(bm.Name+"/"+level.String(), func(b *testing.B) {
				pipeline, err := bm.Pipeline(level)
				if err != nil {
					b.Fatal(err)
				}
				n := benchPHVs(b)
				gen := sim.NewTrafficGen(1, pipeline.PHVLen(), pipeline.Bits(), bm.MaxInput)
				trace := gen.Trace(n)
				stream := sim.NewStream(pipeline)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pipeline.ResetState()
					stream.Reset()
					for fed := 0; fed < n || stream.InFlight() > 0; {
						var in []phv.Value
						if fed < n {
							in = trace.At(fed).Raw()
							fed++
						}
						if _, err := stream.Tick(in); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				perRun := float64(b.Elapsed().Milliseconds()) / float64(b.N)
				b.ReportMetric(perRun, "ms/run")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/PHV")
			})
		}
	}
}

// BenchmarkEngines isolates the per-PHV cost of all four engines — the
// paper's three plus the closure-compiled extension — on one representative
// grid (4x5 pred_raw, the stateful-firewall configuration). The compiled
// engine quantifies how much of the SCC-vs-inlining gap in BenchmarkTable1
// is interpreter dispatch (see EXPERIMENTS.md).
func BenchmarkEngines(b *testing.B) {
	bm, err := spec.Lookup("stateful-firewall")
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range core.AllLevels() {
		level := level
		b.Run(level.String(), func(b *testing.B) {
			pipeline, err := bm.Pipeline(level)
			if err != nil {
				b.Fatal(err)
			}
			gen := sim.NewTrafficGen(2, pipeline.PHVLen(), pipeline.Bits(), 0)
			in := make([]*phv.PHV, 256)
			for i := range in {
				in[i] = gen.Next()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Process(in[i%len(in)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
