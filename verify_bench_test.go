// Benchmarks for the formal verifier (§7 extension): the cost of proving
// each Table 1 machine code fixture equivalent to its specification, and
// how proof cost scales with the verification bit width — the knob the
// §5.2 case study turned when its synthesizer "failed to find machine code
// to satisfy 10-bit inputs in the allotted time".
//
// Run with:
//
//	go test -bench BenchmarkVerify -benchmem
package druzhba_test

import (
	"fmt"
	"testing"

	"druzhba/internal/spec"
	"druzhba/internal/verify"
)

// proveFixture runs one equivalence proof for a Table 1 fixture.
func proveFixture(b *testing.B, name string, opts verify.Options) *verify.Result {
	b.Helper()
	bm, err := spec.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := bm.Spec()
	if err != nil {
		b.Fatal(err)
	}
	code, err := bm.MachineCode()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bm.DominoProgram()
	if err != nil {
		b.Fatal(err)
	}
	if bm.MaxInput > 0 && opts.MaxInput == 0 {
		opts.MaxInput = bm.MaxInput
	}
	res, err := verify.Equivalence(hw, code, prog, bm.Fields, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkVerifyTable1 proves every Table 1 fixture at 4 bits over 2
// transactions; one iteration is one full proof (formula construction +
// SAT solving).
func BenchmarkVerifyTable1(b *testing.B) {
	for _, bm := range spec.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var vars int
			for i := 0; i < b.N; i++ {
				res := proveFixture(b, bm.Name, verify.Options{Bits: 4, Steps: 2})
				if !res.Equivalent {
					b.Fatalf("fixture should prove: %v", res)
				}
				vars = res.Vars
			}
			b.ReportMetric(float64(vars), "SATvars")
		})
	}
}

// BenchmarkVerifyWidthScaling proves the sampling fixture at increasing
// verification widths, showing how the exhaustive-proof cost grows where a
// fuzzer's cost would stay flat (it samples) while its coverage collapses.
func BenchmarkVerifyWidthScaling(b *testing.B) {
	for _, bits := range []int{3, 4, 6, 8, 10} {
		bits := bits
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			var vars int
			for i := 0; i < b.N; i++ {
				res := proveFixture(b, "sampling", verify.Options{Bits: bits, Steps: 2})
				if !res.Equivalent {
					b.Fatalf("sampling should prove at %d bits: %v", bits, res)
				}
				vars = res.Vars
			}
			b.ReportMetric(float64(vars), "SATvars")
		})
	}
}
