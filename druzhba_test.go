package druzhba_test

import (
	"context"
	"strings"
	"testing"

	"druzhba"
)

const samplingDomino = `
state count = 0;

transaction {
    if (count == 9) {
        count = 0;
        pkt.sample = 1;
    } else {
        count = count + 1;
        pkt.sample = 0;
    }
}
`

func identityConfig() druzhba.Config {
	return druzhba.Config{Depth: 1, Width: 1}
}

func identityCode(t *testing.T, cfg druzhba.Config) *druzhba.MachineCode {
	t.Helper()
	req, err := druzhba.RequiredPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, h := range req {
		b.WriteString(h.Name + " = 0\n")
	}
	code, err := druzhba.ParseMachineCode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestFacadeBuildAndSimulate(t *testing.T) {
	cfg := identityConfig()
	code := identityCode(t, cfg)
	for _, level := range []druzhba.OptLevel{druzhba.Unoptimized, druzhba.SCCPropagation, druzhba.SCCInlining} {
		p, err := druzhba.BuildPipeline(cfg, code, level)
		if err != nil {
			t.Fatalf("BuildPipeline(%v): %v", level, err)
		}
		res, err := druzhba.Simulate(p, 7, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output.Len() != 100 {
			t.Errorf("output length = %d", res.Output.Len())
		}
		if d := res.Input.Diff(res.Output); d != "" {
			t.Errorf("identity pipeline: %s", d)
		}
	}
}

func TestFacadeValidate(t *testing.T) {
	cfg := identityConfig()
	code := identityCode(t, cfg)
	errs, err := druzhba.ValidateMachineCode(cfg, code)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Errorf("identity code invalid: %v", errs)
	}
}

func TestFacadeDominoFuzz(t *testing.T) {
	// Hand the facade the sampling benchmark: 2x1 if_else_raw.
	cfg := druzhba.Config{Depth: 2, Width: 1, StatefulAtom: "if_else_raw"}
	req, err := druzhba.RequiredPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, h := range req {
		b.WriteString(h.Name + " = 0\n")
	}
	// Configure the counter and the equality check (same machine code as
	// the spec package's sampling fixture).
	b.WriteString(`
pipeline_stage_0_stateful_alu_0_rel_op_0 = 0
pipeline_stage_0_stateful_alu_0_mux3_0 = 2
pipeline_stage_0_stateful_alu_0_const_0 = 9
pipeline_stage_0_stateful_alu_0_opt_1 = 1
pipeline_stage_0_stateful_alu_0_mux3_1 = 2
pipeline_stage_0_stateful_alu_0_const_1 = 0
pipeline_stage_0_stateful_alu_0_opt_2 = 0
pipeline_stage_0_stateful_alu_0_mux3_2 = 2
pipeline_stage_0_stateful_alu_0_const_2 = 1
pipeline_stage_0_output_mux_phv_0 = 2
pipeline_stage_1_stateless_alu_0_alu_op_0 = 5
pipeline_stage_1_stateless_alu_0_mux3_0 = 0
pipeline_stage_1_stateless_alu_0_mux3_1 = 2
pipeline_stage_1_stateless_alu_0_const_1 = 0
pipeline_stage_1_output_mux_phv_0 = 1
`)
	code, err := druzhba.ParseMachineCode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := druzhba.BuildPipeline(cfg, code, druzhba.SCCInlining)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := druzhba.ParseDominoSpec(samplingDomino, map[string]int{"sample": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := druzhba.FuzzPipeline(p, spec, 3, 1000, 0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Errorf("sampling fuzz failed: %s", rep)
	}
}

func TestFacadeRunDRMTCampaign(t *testing.T) {
	rep, err := druzhba.RunDRMTCampaign(context.Background(), 500, druzhba.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || len(rep.Jobs) < 3 {
		t.Fatalf("dRMT campaign: passed=%v jobs=%d:\n%s", rep.Passed, len(rep.Jobs), rep.Text(false))
	}
	for i := range rep.Jobs {
		if rep.Jobs[i].Arch != "drmt" {
			t.Fatalf("job %s arch = %q, want drmt", rep.Jobs[i].Name, rep.Jobs[i].Arch)
		}
	}
}

func TestFacadeGenerateSource(t *testing.T) {
	cfg := identityConfig()
	code := identityCode(t, cfg)
	src, err := druzhba.GeneratePipelineSource(cfg, code, druzhba.SCCInlining, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package demo") || !strings.Contains(src, "func Execute(") {
		t.Errorf("generated source malformed:\n%s", src)
	}
}

func TestFacadeSynthesize(t *testing.T) {
	cfg := identityConfig()
	spec, err := druzhba.ParseDominoSpec(`
transaction {
    pkt.v = pkt.v + 1;
}
`, map[string]int{"v": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := druzhba.Synthesize(cfg, spec, druzhba.SynthesizeOptions{Seed: 1, MaxIters: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("plus-one not synthesized (%d iterations)", res.Iterations)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := druzhba.BuildPipeline(druzhba.Config{}, nil, druzhba.Unoptimized); err == nil {
		t.Error("BuildPipeline accepted empty config")
	}
	if _, err := druzhba.RequiredPairs(druzhba.Config{Depth: 1, Width: 1, StatefulAtom: "nope"}); err == nil {
		t.Error("unknown atom accepted")
	}
	if _, err := druzhba.RequiredPairs(druzhba.Config{Depth: 1, Width: 1, Bits: 99}); err == nil {
		t.Error("invalid bit width accepted")
	}
	if len(druzhba.AtomNames()) != 11 {
		t.Errorf("AtomNames = %v", druzhba.AtomNames())
	}
}

// TestFacadeProve exercises the formal-verification facade: the identity
// machine code is proved equivalent to the identity specification, and a
// corrupted pipeline (ALU output instead of passthrough) is refuted with a
// counterexample.
func TestFacadeProve(t *testing.T) {
	cfg := identityConfig()
	code := identityCode(t, cfg)
	spec := `transaction { pkt.a = pkt.a; }`
	fields := map[string]int{"a": 0}

	res, err := druzhba.Prove(cfg, code, spec, fields, druzhba.VerifyOptions{Bits: 6, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("identity should prove: %v", res)
	}

	// Route container 0 through the stateless ALU (which computes
	// pkt_0 + pkt_0 with all-zero machine code): no longer the identity.
	bad := code.Clone()
	bad.Set("pipeline_stage_0_output_mux_phv_0", 1)
	res, err = druzhba.Prove(cfg, bad, spec, fields, druzhba.VerifyOptions{Bits: 6, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("doubled output should be refuted")
	}
	if res.Counterexample == nil || res.Counterexample.Len() != 1 {
		t.Fatalf("refutation must carry a 1-step counterexample: %v", res)
	}
	in := res.Counterexample.At(0).Get(0)
	if (in+in)&0x3f == in {
		t.Fatalf("counterexample input %d does not separate a from a+a at 6 bits", in)
	}
}

// TestFacadeProveParseErrors covers the facade's error paths.
func TestFacadeProveParseErrors(t *testing.T) {
	cfg := identityConfig()
	code := identityCode(t, cfg)
	if _, err := druzhba.Prove(cfg, code, "not domino {", map[string]int{}, druzhba.VerifyOptions{}); err == nil {
		t.Fatal("bad Domino source should error")
	}
	if _, err := druzhba.Prove(druzhba.Config{Depth: 0, Width: 1}, code, `transaction { pkt.a = pkt.a; }`,
		map[string]int{"a": 0}, druzhba.VerifyOptions{}); err == nil {
		t.Fatal("bad config should error")
	}
}
