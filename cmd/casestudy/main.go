// casestudy reproduces §5.2 of the paper: a battery of small Domino packet
// transactions is compiled to Druzhba machine code with the synthesis-based
// compiler, every result is tested by fuzzing, and failures are classified —
// machine code files missing the output-mux pairs, and machine code that
// only satisfies a limited range of values because synthesis ran at a low
// input bit width.
//
// Usage:
//
//	casestudy                 # full battery (~126 programs)
//	casestudy -v              # with per-program outcomes
//	casestudy -limit 20       # quicker pass over a prefix of the battery
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"druzhba/internal/casestudy"
	"druzhba/internal/cli"
)

func main() {
	fs := flag.NewFlagSet("casestudy", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base search seed")
	limit := fs.Int("limit", 0, "run only the first N programs (0 = all)")
	match := fs.String("match", "", "run only programs whose name contains this substring")
	iters := fs.Int("iters", 150000, "per-program synthesis budget")
	verifyBits := fs.Int("verify-bits", 0, "synthesis input bit width (0 = 10-bit default; limited-range cases always use 2)")
	validateBits := fs.Int("validate-bits", 10, "validation input bit width")
	workers := fs.Int("workers", 0, "parallel workers (0 = NumCPU)")
	verbose := fs.Bool("v", false, "print per-program outcomes")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	cases := casestudy.Battery()
	if *match != "" {
		var filtered []*casestudy.Case
		for _, c := range cases {
			if strings.Contains(c.Name, *match) {
				filtered = append(filtered, c)
			}
		}
		cases = filtered
	}
	if *limit > 0 && *limit < len(cases) {
		cases = cases[:*limit]
	}
	fmt.Fprintf(os.Stderr, "casestudy: synthesizing and testing %d programs...\n", len(cases))
	summary, err := casestudy.Run(cases, casestudy.Options{
		Seed:         *seed,
		MaxIters:     *iters,
		VerifyBits:   *verifyBits,
		ValidateBits: *validateBits,
		Workers:      *workers,
	})
	if err != nil {
		cli.Fatalf("casestudy: %v", err)
	}
	fmt.Print(summary.Format(*verbose))
}
