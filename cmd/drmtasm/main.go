// drmtasm lowers a mini-P4 program to the dRMT processor instruction set
// (§7 of the paper: "modeling dRMT to the same low level granularity as
// our RMT model by designing a new instruction set with similar properties
// to our RMT instruction set"), prints the disassembly, and optionally
// executes the program on random traffic — differentially against the
// table-level dRMT machine, reporting the first divergence if any.
//
// Usage:
//
//	drmtasm -p4 router.p4                             # assemble + disassemble
//	drmtasm -p4 router.p4 -entries router.entries \
//	        -packets 1000 -diff                       # also run + cross-check
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"druzhba/internal/cli"
	"druzhba/internal/drmt"
	"druzhba/internal/p4"
)

func main() {
	fs := flag.NewFlagSet("drmtasm", flag.ExitOnError)
	p4Path := fs.String("p4", "", "mini-P4 program")
	entriesPath := fs.String("entries", "", "table entries file (empty = defaults only)")
	packets := fs.Int("packets", 0, "packets to execute (0 = assemble only)")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	maxVal := fs.Int64("max", 0, "bound on generated field values (0 = field width)")
	processors := fs.Int("processors", 4, "match+action processors")
	diff := fs.Bool("diff", true, "cross-check against the table-level machine")
	quiet := fs.Bool("quiet", false, "suppress the disassembly listing")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *p4Path == "" {
		cli.Fatalf("drmtasm: -p4 is required")
	}
	src, err := cli.ReadFile(*p4Path)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	prog, err := p4.Parse(src)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	isa, err := drmt.Assemble(prog)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	fmt.Printf("assembled %d instructions, %d registers (%d action-data params), %d tables\n",
		len(isa.Instrs), isa.NumRegs, isa.NumParams, len(isa.Tables))
	if !*quiet {
		fmt.Print(isa.Disassemble())
	}
	if *packets == 0 {
		return
	}

	entriesText := ""
	if *entriesPath != "" {
		entriesText, err = cli.ReadFile(*entriesPath)
		if err != nil {
			cli.Fatalf("drmtasm: %v", err)
		}
	}
	entries, err := drmt.ParseEntries(strings.NewReader(entriesText), prog)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	hw := drmt.HWConfig{Processors: *processors}
	isaM, err := drmt.NewISAMachine(prog, isa, entries, hw)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	gen, err := drmt.NewTrafficGen(*seed, prog, *maxVal)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	batch := gen.Batch(*packets)
	var mirror []*drmt.Packet
	if *diff {
		mirror = make([]*drmt.Packet, len(batch))
		for i, p := range batch {
			mirror[i] = p.Clone()
		}
	}
	stats, err := isaM.Run(batch)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	fmt.Printf("\nISA execution: %d packets, %d instructions (%.1f per packet), %d matches, %d dropped\n",
		stats.Packets, stats.Instructions,
		float64(stats.Instructions)/float64(stats.Packets), stats.MatchOps, stats.Dropped)

	if !*diff {
		return
	}
	tableM, err := drmt.NewMachine(prog, entries, hw, nil)
	if err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	if _, err := tableM.Run(mirror); err != nil {
		cli.Fatalf("drmtasm: %v", err)
	}
	for i := range batch {
		a, b := mirror[i], batch[i]
		if a.Dropped != b.Dropped {
			cli.Fatalf("drmtasm: DIVERGENCE at packet %d: dropped %v (table) vs %v (ISA)", i, a.Dropped, b.Dropped)
		}
		for f, v := range a.Fields {
			if b.Fields[f] != v {
				cli.Fatalf("drmtasm: DIVERGENCE at packet %d field %s: %d (table) vs %d (ISA)", i, f, v, b.Fields[f])
			}
		}
	}
	fmt.Printf("differential check: ISA and table-level execution agree on all %d packets\n", len(batch))
	os.Exit(0)
}
