// dfarmd is the long-running campaign service: dfarm's engine behind an
// HTTP daemon with a content-addressed persistent shard-result cache.
// Clients (dfarm -server, or anything speaking the JSON protocol) POST job
// matrices to /v1/campaigns and receive one NDJSON row per job as jobs
// complete, in matrix order, followed by a summary row carrying the
// verdict, cache counters and timing.
//
// Shard results are pure functions of (target fingerprint, shard seed,
// shard size), so the daemon caches every clean result — in a bounded
// in-memory LRU, optionally tiered over an on-disk directory that survives
// restarts — and replays it on resubmission: submitting an unchanged
// matrix twice executes zero shards the second time while streaming
// byte-identical job rows.
//
//	dfarmd -addr :8844 -cache-dir /var/cache/dfarmd
//	dfarm -server http://localhost:8844 -run lru -packets 50000
//
// Endpoints:
//
//	POST /v1/campaigns   submit a matrix (JSON), stream NDJSON rows
//	GET  /v1/benchmarks  embedded benchmark registries by architecture
//	GET  /v1/stats       cumulative campaigns/jobs/cache counters
//	GET  /healthz        liveness probe
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/farmd"
)

func main() {
	fs := flag.NewFlagSet("dfarmd", flag.ExitOnError)
	addr := fs.String("addr", ":8844", "listen address")
	cacheDir := fs.String("cache-dir", "", "persistent shard-cache directory (empty = in-memory only)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory LRU capacity in shard results (0 = default)")
	cacheMaxMB := fs.Int64("cache-max-mb", 4096, "on-disk cache size cap in MiB; least recently used entries are evicted past it (0 = unbounded)")
	noCache := fs.Bool("no-cache", false, "disable the shard-result cache entirely")
	workers := fs.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 2, "campaigns executing at once; excess submissions queue")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job wall-clock budget (0 = unbounded)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() > 0 {
		cli.Fatalf("dfarmd: unexpected argument %q (all options are flags)", fs.Arg(0))
	}

	var cache campaign.ShardCache
	if !*noCache {
		mem := farmd.NewMemCache(*cacheEntries)
		if *cacheDir != "" {
			disk, err := farmd.NewDirCacheLimit(*cacheDir, *cacheMaxMB<<20)
			if err != nil {
				cli.Fatalf("dfarmd: %v", err)
			}
			cache = farmd.NewTiered(mem, disk)
		} else {
			cache = mem
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "dfarmd: listening on %s (cache-dir=%q, max-concurrent=%d)\n", *addr, *cacheDir, *maxConcurrent)
	err := farmd.Serve(ctx, *addr, farmd.Config{
		Cache:         cache,
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		JobTimeout:    *jobTimeout,
	})
	if err != nil {
		cli.Fatalf("dfarmd: %v", err)
	}
}
