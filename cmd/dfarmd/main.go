// dfarmd is the long-running campaign service: dfarm's engine behind an
// HTTP daemon with a content-addressed persistent shard-result cache.
// Clients (dfarm -server, or anything speaking the JSON protocol) POST job
// matrices to /v1/campaigns and receive one NDJSON row per job as jobs
// complete, in matrix order, followed by a summary row carrying the
// verdict, cache counters and timing.
//
// Shard results are pure functions of (target fingerprint, shard seed,
// shard size), so the daemon caches every clean result — in a bounded
// in-memory LRU, optionally tiered over an on-disk directory that survives
// restarts — and replays it on resubmission: submitting an unchanged
// matrix twice executes zero shards the second time while streaming
// byte-identical job rows.
//
// With -coord, the daemon joins a distributed campaign fabric as a worker:
// it heartbeats to the dcoord coordinator (which leases it shards over
// POST /v1/leases) and stacks the coordinator's shared shard store under
// its local cache tiers, so work any fleet member has done is a cache hit
// here. -advertise is the base URL the coordinator should dial back
// (defaults to http://<hostname><addr-port>).
//
//	dfarmd -addr :8844 -cache-dir /var/cache/dfarmd
//	dfarmd -addr :8845 -coord http://coord:8850 -advertise http://worker1:8845 -auth-token s3cret
//	dfarm -server http://localhost:8844 -run lru -packets 50000
//
// Endpoints:
//
//	POST /v1/campaigns   submit a matrix (JSON), stream NDJSON rows
//	POST /v1/leases      execute one shard lease (fabric coordinators)
//	GET  /v1/benchmarks  embedded benchmark registries by architecture
//	GET  /v1/stats       cumulative campaigns/jobs/leases/cache counters
//	GET  /metrics        Prometheus-text metrics (lease latency, cache tiers)
//	GET  /healthz        liveness probe
//
// -trace journals campaign/lease lifecycle events as NDJSON; -pprof
// mounts net/http/pprof on a separate listener, never the serving mux.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// streams for -drain-timeout, flushes the disk cache tier and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/fabric"
	"druzhba/internal/farmd"
	"druzhba/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("dfarmd", flag.ExitOnError)
	addr := fs.String("addr", ":8844", "listen address")
	cacheDir := fs.String("cache-dir", "", "persistent shard-cache directory (empty = in-memory only)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory LRU capacity in shard results (0 = default)")
	cacheMaxMB := fs.Int64("cache-max-mb", 4096, "on-disk cache size cap in MiB; least recently used entries are evicted past it (0 = unbounded)")
	noCache := fs.Bool("no-cache", false, "disable the shard-result cache entirely")
	workers := fs.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "default PHV-batch size for shards whose request sets none (0 = streaming; results are byte-identical for every value)")
	maxConcurrent := fs.Int("max-concurrent", 2, "campaigns executing at once; excess submissions queue")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job wall-clock budget (0 = unbounded)")
	rowTimeout := fs.Duration("row-timeout", 0, "per-row stream write deadline; a client stalled past it has its campaign cancelled (0 = 30s, negative = unbounded)")
	authToken := fs.String("auth-token", "", "shared fleet secret; requires Authorization: Bearer on mutating endpoints")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown window for in-flight streams")
	coord := fs.String("coord", "", "join this dcoord coordinator's fabric as a worker (base URL)")
	advertise := fs.String("advertise", "", "base URL the coordinator dials this worker back on (default derived from -addr and the hostname)")
	heartbeat := fs.Duration("heartbeat", 5*time.Second, "coordinator heartbeat interval with -coord")
	tracePath := fs.String("trace", "", "journal campaign/lease lifecycle events as NDJSON to this file (empty = off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra listener, e.g. 127.0.0.1:6060 (empty = off; never mounted on the serving mux)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() > 0 {
		cli.Fatalf("dfarmd: unexpected argument %q (all options are flags)", fs.Arg(0))
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			cli.Fatalf("dfarmd: -trace: %v", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, nil)
	}
	if *pprofAddr != "" {
		bound, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			cli.Fatalf("dfarmd: -pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dfarmd: pprof on http://%s/debug/pprof/\n", bound)
	}

	var cache campaign.ShardCache
	var remoteCounts func() (hits, misses int64)
	if !*noCache {
		cache = farmd.InstrumentCache(farmd.NewMemCache(*cacheEntries), farmd.TierMem, reg)
		if *cacheDir != "" {
			disk, err := farmd.NewDirCacheLimit(*cacheDir, *cacheMaxMB<<20)
			if err != nil {
				cli.Fatalf("dfarmd: %v", err)
			}
			cache = farmd.NewTiered(cache, farmd.InstrumentCache(disk, farmd.TierDisk, reg))
		}
		if *coord != "" {
			// The fleet's shared store is the outermost (slowest) tier:
			// local misses consult the coordinator, local executions
			// publish back, so the whole fleet pools its shard work.
			remote := farmd.InstrumentCache(farmd.NewRemoteCache(*coord, *authToken, nil), farmd.TierRemote, reg)
			cache = farmd.NewTiered(cache, remote)
			remoteCounts = remote.Counts
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coord != "" {
		self := *advertise
		if self == "" {
			host, err := os.Hostname()
			if err != nil {
				host = "localhost"
			}
			_, port, err := net.SplitHostPort(*addr)
			if err != nil {
				cli.Fatalf("dfarmd: cannot derive -advertise from -addr %q: %v", *addr, err)
			}
			self = fmt.Sprintf("http://%s:%s", host, port)
		}
		go fabric.Heartbeat(ctx, *coord, self, *authToken, *heartbeat, nil)
		fmt.Fprintf(os.Stderr, "dfarmd: joining fabric at %s as %s\n", *coord, self)
	}

	fmt.Fprintf(os.Stderr, "dfarmd: listening on %s (cache-dir=%q, max-concurrent=%d)\n", *addr, *cacheDir, *maxConcurrent)
	err := farmd.Serve(ctx, *addr, farmd.Config{
		Cache:           cache,
		Workers:         *workers,
		BatchSize:       *batch,
		MaxConcurrent:   *maxConcurrent,
		JobTimeout:      *jobTimeout,
		RowWriteTimeout: *rowTimeout,
		AuthToken:       *authToken,
		Metrics:         reg,
		Trace:           tracer,
		RemoteCounts:    remoteCounts,
	}, *drainTimeout)
	if err != nil {
		cli.Fatalf("dfarmd: %v", err)
	}
}
