// dverify formally verifies machine code against a high-level Domino
// specification (§7 of the paper: the specification and the pipeline
// description "can be transformed into SMT formulas so that equivalence
// can be formally proven"). Unlike dfuzz, which samples random PHVs,
// dverify covers every input of the chosen bit width exhaustively via
// bit-blasting to an internal SAT solver and either proves equivalence or
// prints a concrete counterexample input trace.
//
// Usage (file mode, mirroring dfuzz):
//
//	dverify -depth 2 -width 1 -stateful if_else_raw \
//	        -code sampling.mc -domino sampling.domino -fields sample=0 \
//	        -vbits 5 -steps 3
//
// Benchmark mode verifies a built-in Table 1 fixture:
//
//	dverify -bench sampling -vbits 5 -steps 3
//
// -json emits the result as a machine-readable document instead: verdict
// (proven, counterexample, unknown), SAT statistics (variables, clauses,
// conflicts, solve time) and, on refutation, the decoded counterexample
// input trace with the first diverging transaction. With -bench all the
// battery streams one JSON row per program. -timeout bounds the solve's
// wall clock (an expired budget reports unknown); an interrupt (Ctrl-C)
// abandons the solve the same way instead of wedging.
//
// Exit status: 0 when equivalence is proven; 1 on a counterexample or an
// unknown verdict (budget or timeout exhausted) or on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/machinecode"
	"druzhba/internal/phv"
	"druzhba/internal/spec"
	"druzhba/internal/verify"
)

// jsonResult is -json's output document: the deterministic verdict and SAT
// statistics, plus the wall-clock solve time (nondeterministic, reported
// for operators, excluded from nothing here since this output is not
// diffed across runs).
type jsonResult struct {
	Program   string    `json:"program,omitempty"`
	Verdict   string    `json:"verdict"`
	Bits      int       `json:"bits"`
	Steps     int       `json:"steps"`
	Vars      int       `json:"vars"`
	Clauses   int       `json:"clauses"`
	Conflicts int64     `json:"conflicts"`
	SolveMS   float64   `json:"solve_ms"`
	Trace     [][]int64 `json:"trace,omitempty"`
	FailStep  int       `json:"fail_step,omitempty"`
}

// resultJSON flattens a verification result into the -json document.
func resultJSON(program string, bits, steps int, res *verify.Result, solveMS float64) jsonResult {
	out := jsonResult{
		Program:   program,
		Bits:      bits,
		Steps:     steps,
		Vars:      res.Vars,
		Clauses:   res.Clauses,
		Conflicts: res.SolverStats.Conflicts,
		SolveMS:   solveMS,
	}
	switch {
	case res.Equivalent:
		out.Verdict = "proven"
	case res.Unknown:
		out.Verdict = "unknown"
	default:
		out.Verdict = "counterexample"
		out.FailStep = res.FailStep
		out.Trace = traceRows(res.Counterexample)
	}
	return out
}

// traceRows decodes a counterexample trace into rows of container values.
func traceRows(trace *phv.Trace) [][]int64 {
	if trace == nil {
		return nil
	}
	rows := make([][]int64, 0, trace.Len())
	for s := 0; s < trace.Len(); s++ {
		p := trace.At(s)
		row := make([]int64, p.Len())
		for c := range row {
			row[c] = int64(p.Get(c))
		}
		rows = append(rows, row)
	}
	return rows
}

func main() {
	fs := flag.NewFlagSet("dverify", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	codePath := fs.String("code", "", "machine code file under test (- for stdin)")
	dominoPath := fs.String("domino", "", "Domino specification file")
	fieldsFlag := fs.String("fields", "", "packet field bindings, e.g. sample=0,seq=1")
	bench := fs.String("bench", "", "verify a built-in Table 1 benchmark fixture instead of files")
	bits := fs.Int("vbits", 8, "verification bit width; overrides -bits (exhaustive over this width)")
	steps := fs.Int("steps", 2, "consecutive transactions to unroll")
	maxVal := fs.Int64("max", 0, "constrain input container values to [0,max) (0 = full width)")
	budget := fs.Int64("budget", 0, "solver conflict budget (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock solve budget; an expired budget reports unknown (0 = unbounded)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (verdict, counterexample trace, SAT statistics)")
	stateFlag := fs.String("state", "", "state bindings: domino_state=stage:slot:index, comma separated")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		hw     core.Spec
		code   *machinecode.Program
		prog   *domino.Program
		fields domino.FieldMap
		err    error
	)
	if *bench == "all" {
		battery(ctx, *bits, *steps, *budget, *jsonOut)
		return
	}
	switch {
	case *bench != "":
		bm, lerr := spec.Lookup(*bench)
		if lerr != nil {
			cli.Fatalf("dverify: %v (available: %v)", lerr, spec.Names())
		}
		if hw, err = bm.Spec(); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		if code, err = bm.MachineCode(); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		if prog, err = bm.DominoProgram(); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		fields = bm.Fields
		if *maxVal == 0 {
			*maxVal = bm.MaxInput
		}
	default:
		if *codePath == "" || *dominoPath == "" {
			cli.Fatalf("dverify: -code and -domino are required (or -bench)")
		}
		if hw, err = cfg.Spec(); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		if code, err = cli.LoadMachineCode(*codePath); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		src, rerr := cli.ReadFile(*dominoPath)
		if rerr != nil {
			cli.Fatalf("dverify: %v", rerr)
		}
		if prog, err = domino.Parse(src); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
		prog.Name = *dominoPath
		if fields, err = cli.ParseFieldMap(*fieldsFlag); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
	}

	bindings, err := parseStateBindings(*stateFlag)
	if err != nil {
		cli.Fatalf("dverify: %v", err)
	}
	start := time.Now()
	res, err := verify.EquivalenceContext(ctx, hw, code, prog, fields, verify.Options{
		Bits:          *bits,
		Steps:         *steps,
		MaxInput:      *maxVal,
		MaxConflicts:  *budget,
		StateBindings: bindings,
	})
	if err != nil {
		cli.Fatalf("dverify: %v", err)
	}
	solveMS := float64(time.Since(start).Microseconds()) / 1e3
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resultJSON(prog.Name, *bits, *steps, res, solveMS)); err != nil {
			cli.Fatalf("dverify: %v", err)
		}
	} else {
		fmt.Println(res)
	}
	if !res.Equivalent {
		os.Exit(1)
	}
}

// parseStateBindings parses "c=0:0:0,d=1:2:0" into state bindings.
func parseStateBindings(s string) (map[string]verify.StateLoc, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]verify.StateLoc{}
	for _, part := range strings.Split(s, ",") {
		name, loc, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad state binding %q (want name=stage:slot:index)", part)
		}
		var l verify.StateLoc
		if _, err := fmt.Sscanf(loc, "%d:%d:%d", &l.Stage, &l.Slot, &l.Index); err != nil {
			return nil, fmt.Errorf("bad state location %q: %v", loc, err)
		}
		out[name] = l
	}
	return out, nil
}

// battery verifies every Table 1 fixture and prints one row per program:
// the formal-verification counterpart of the paper's §5.2 case-study
// battery. With jsonOut it streams one JSON document per program instead.
func battery(ctx context.Context, bits, steps int, budget int64, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("%-20s %-6s %-6s %-10s %8s %10s %10s\n",
			"program", "bits", "steps", "verdict", "SATvars", "conflicts", "time")
	}
	enc := json.NewEncoder(os.Stdout)
	failures := 0
	for _, bm := range spec.All() {
		hw, err := bm.Spec()
		if err != nil {
			cli.Fatalf("dverify: %s: %v", bm.Name, err)
		}
		code, err := bm.MachineCode()
		if err != nil {
			cli.Fatalf("dverify: %s: %v", bm.Name, err)
		}
		prog, err := bm.DominoProgram()
		if err != nil {
			cli.Fatalf("dverify: %s: %v", bm.Name, err)
		}
		start := time.Now()
		res, err := verify.EquivalenceContext(ctx, hw, code, prog, bm.Fields, verify.Options{
			Bits: bits, Steps: steps, MaxInput: bm.MaxInput, MaxConflicts: budget,
		})
		if err != nil {
			cli.Fatalf("dverify: %s: %v", bm.Name, err)
		}
		if !res.Equivalent {
			failures++
		}
		if jsonOut {
			if err := enc.Encode(resultJSON(bm.Name, bits, steps, res, float64(time.Since(start).Microseconds())/1e3)); err != nil {
				cli.Fatalf("dverify: %v", err)
			}
			continue
		}
		verdict := "PROVED"
		switch {
		case res.Unknown:
			verdict = "UNKNOWN"
		case !res.Equivalent:
			verdict = "REFUTED"
		}
		fmt.Printf("%-20s %-6d %-6d %-10s %8d %10d %10s\n",
			bm.Name, bits, steps, verdict, res.Vars, res.SolverStats.Conflicts,
			time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		os.Exit(1)
	}
}
