// dsim is Druzhba's simulation component (§3.3 of the paper): it builds an
// executable pipeline from a hardware configuration and machine code, drives
// randomly generated PHVs through it tick by tick, and prints the output
// packet trace and final state vectors.
//
// Usage:
//
//	dsim -depth 2 -width 1 -stateful if_else_raw -code sampling.mc -phvs 20 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("dsim", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	codePath := fs.String("code", "", "machine code file (- for stdin)")
	level := fs.String("level", "scc+inline", "optimization level: unoptimized, scc, scc+inline")
	phvs := fs.Int("phvs", 10, "number of PHVs to generate")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	maxVal := fs.Int64("max", 0, "bound on generated container values (0 = full width)")
	showTrace := fs.Bool("trace", false, "print the input and output traces")
	unchecked := fs.Bool("unchecked", false, "skip machine code validation (missing pairs fail at runtime, like the original dsim)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	spec, err := cfg.Spec()
	if err != nil {
		cli.Fatalf("dsim: %v", err)
	}
	if *codePath == "" {
		cli.Fatalf("dsim: -code is required")
	}
	code, err := cli.LoadMachineCode(*codePath)
	if err != nil {
		cli.Fatalf("dsim: %v", err)
	}
	lvl, err := cli.ParseLevel(*level)
	if err != nil {
		cli.Fatalf("dsim: %v", err)
	}
	var pipeline *core.Pipeline
	if *unchecked {
		pipeline, err = core.BuildUnchecked(spec, code)
	} else {
		pipeline, err = core.Build(spec, code, lvl)
	}
	if err != nil {
		cli.Fatalf("dsim: %v", err)
	}
	gen := sim.NewTrafficGen(*seed, pipeline.PHVLen(), pipeline.Bits(), *maxVal)
	input := gen.Trace(*phvs)
	res, err := sim.Run(pipeline, input)
	if err != nil {
		cli.Fatalf("dsim: simulation failed: %v", err)
	}
	fmt.Printf("simulated %d PHVs in %d ticks (pipeline %dx%d, level %s)\n",
		res.Output.Len(), res.Ticks, spec.Depth, spec.Width, lvl)
	if *showTrace {
		for i := 0; i < input.Len(); i++ {
			fmt.Printf("phv %4d: in %s -> out %s\n", i, input.At(i), res.Output.At(i))
		}
	}
	fmt.Printf("final state: %s\n", res.FinalState)
}
