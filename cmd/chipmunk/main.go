// chipmunk is the synthesis-based compiler of the paper's §5.2 case study
// (substituting the SKETCH-based Chipmunk): it takes a Domino packet
// transaction and a pipeline configuration, synthesizes machine code by
// CEGIS over the pipeline's holes, and optionally validates the result at a
// higher input bit width (the case study's 10-bit check).
//
// Usage:
//
//	chipmunk -domino sum.domino -fields v=0 -depth 1 -width 1 -stateful raw \
//	         -verify-bits 2 -validate-bits 10 -o sum.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"druzhba/internal/cli"
	"druzhba/internal/domino"
	"druzhba/internal/synth"
)

func main() {
	fs := flag.NewFlagSet("chipmunk", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	dominoPath := fs.String("domino", "", "Domino program to compile")
	fieldsFlag := fs.String("fields", "", "packet field bindings, e.g. v=0,out=1")
	seed := fs.Int64("seed", 1, "search seed")
	maxIters := fs.Int("iters", 200000, "search budget")
	maxConst := fs.Int64("max-const", 8, "largest immediate the sketch may use")
	verifyBits := fs.Int("verify-bits", 2, "bit width of the bounded verification domain")
	validateBits := fs.Int("validate-bits", 10, "post-synthesis validation bit width (0 to skip)")
	out := fs.String("o", "", "write synthesized machine code here (default stdout)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	spec, err := cfg.Spec()
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	if *dominoPath == "" {
		cli.Fatalf("chipmunk: -domino is required")
	}
	src, err := cli.ReadFile(*dominoPath)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	prog, err := domino.Parse(src)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	prog.Name = *dominoPath
	fields, err := cli.ParseFieldMap(*fieldsFlag)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	target, err := domino.NewPHVSpec(prog, fields, spec.Bits)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	containers, err := domino.WrittenContainers(prog, fields)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	res, err := synth.Synthesize(spec, target, synth.Options{
		Seed:       *seed,
		MaxIters:   *maxIters,
		MaxConst:   *maxConst,
		VerifyBits: *verifyBits,
		Containers: containers,
	})
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	if !res.Found {
		cli.Fatalf("chipmunk: synthesis failed after %d iterations (%d CEGIS rounds, %d examples)",
			res.Iterations, res.CEGISRounds, res.Examples)
	}
	fmt.Fprintf(os.Stderr, "chipmunk: synthesized in %d iterations, %d CEGIS round(s)\n",
		res.Iterations, res.CEGISRounds)

	if *validateBits > 0 {
		rep, err := synth.Validate(spec, res.Code, target, *validateBits, *seed+1, 2000, containers)
		if err != nil {
			cli.Fatalf("chipmunk: %v", err)
		}
		if rep.Passed {
			fmt.Fprintf(os.Stderr, "chipmunk: validated at %d-bit inputs\n", *validateBits)
		} else {
			fmt.Fprintf(os.Stderr, "chipmunk: WARNING: machine code only satisfies a limited range of values (%d-bit validation failed: %s)\n",
				*validateBits, rep)
		}
	}
	if *out == "" {
		fmt.Print(res.Code.String())
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	defer f.Close()
	if err := res.Code.Write(f); err != nil {
		cli.Fatalf("chipmunk: %v", err)
	}
	fmt.Fprintf(os.Stderr, "chipmunk: wrote %s (%d pairs)\n", *out, res.Code.Len())
}
