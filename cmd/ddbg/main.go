// ddbg is the time-travel debugger of the paper's §7 future work: it
// records a full pipeline simulation — per-tick state snapshots and slot
// occupancy — and lets the tester travel bi-directionally through the
// history, set breakpoints on state values, and inspect PHVs, to "trace
// origins of erroneous behavior".
//
// Usage:
//
//	ddbg -depth 2 -width 1 -stateful if_else_raw -code sampling.mc -phvs 30
//
// Commands at the prompt: next, back, goto <t>, state, slots,
// watch <stage> <alu> <var>, break <stage> <alu> <var> <value>, phv <i>,
// quit.
package main

import (
	"flag"
	"os"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/debug"
	"druzhba/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("ddbg", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	codePath := fs.String("code", "", "machine code file (- for stdin)")
	level := fs.String("level", "scc+inline", "optimization level")
	phvs := fs.Int("phvs", 20, "number of PHVs to simulate")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	maxVal := fs.Int64("max", 0, "bound on generated container values")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	spec, err := cfg.Spec()
	if err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
	if *codePath == "" {
		cli.Fatalf("ddbg: -code is required")
	}
	code, err := cli.LoadMachineCode(*codePath)
	if err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
	lvl, err := cli.ParseLevel(*level)
	if err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
	pipeline, err := core.Build(spec, code, lvl)
	if err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
	gen := sim.NewTrafficGen(*seed, pipeline.PHVLen(), pipeline.Bits(), *maxVal)
	session, err := debug.NewSession(pipeline, gen.Trace(*phvs))
	if err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
	if err := debug.REPL(session, os.Stdin, os.Stdout); err != nil {
		cli.Fatalf("ddbg: %v", err)
	}
}
