// dfarm runs parallel fuzzing campaigns: the Fig. 5 compiler-testing
// workflow fanned out over a job matrix on a bounded worker pool. Each
// job's target is built once, its packet budget is sharded into
// deterministically sub-seeded chunks, and shard results merge into a
// report that is byte-identical for every -workers value — so campaign
// output can be diffed across machines and runs.
//
// Two architectures are available as job targets. -arch rmt (the default)
// sweeps the Table-1 benchmark matrix over all four pipeline engines
// (unoptimized, scc, scc+inline, compiled); -arch drmt sweeps the dRMT
// benchmark set, fuzzing the ISA-level machine (§7) against the
// interpreted mini-P4 semantics (§4); -arch all runs both.
//
//	dfarm -packets 50000 -workers 8
//	dfarm -run flowlets -levels scc+inline,compiled -seeds 1,2,3 -json report.json
//	dfarm -arch drmt -packets 20000
//	dfarm -arch all -failfast -timing
//
// Exit status: 0 when every job passes; 1 when any job fails (mismatch,
// simulation error or abort) or on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/drmt"
	"druzhba/internal/spec"
)

func main() {
	fs := flag.NewFlagSet("dfarm", flag.ExitOnError)
	arch := fs.String("arch", "rmt", "architectures to campaign over: rmt, drmt or all")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	packets := fs.Int("packets", 50000, "random PHVs per job (the paper's workload is 50000)")
	shard := fs.Int("shard", 4096, "packets per shard (part of the campaign's identity; changing it changes the traffic)")
	seeds := fs.String("seeds", "1", "comma-separated traffic seeds; each seed adds a full matrix sweep")
	levels := fs.String("levels", "", "comma-separated optimization levels (empty = unoptimized,scc,scc+inline,compiled)")
	run := fs.String("run", "", "only benchmarks whose name contains this substring")
	maxCE := fs.Int("max-counterexamples", 8, "deduplicated counterexamples kept per job (-1 = unbounded)")
	failfast := fs.Bool("failfast", false, "cancel the campaign at the first failing shard")
	jsonPath := fs.String("json", "", "write the report as JSON to this file (- for stdout)")
	timing := fs.Bool("timing", false, "include workers/elapsed/throughput in the report (breaks byte-identity across -workers)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() > 0 {
		cli.Fatalf("dfarm: unexpected argument %q (all options are flags)", fs.Arg(0))
	}

	if *arch != "rmt" && *arch != "drmt" && *arch != "all" {
		cli.Fatalf("dfarm: -arch %q (want rmt, drmt or all)", *arch)
	}
	var optLevels []core.OptLevel
	if *levels != "" {
		if *arch == "drmt" {
			cli.Fatalf("dfarm: -levels applies to the rmt architecture only")
		}
		for _, name := range strings.Split(*levels, ",") {
			lvl, err := cli.ParseLevel(strings.TrimSpace(name))
			if err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
			optLevels = append(optLevels, lvl)
		}
	}
	var seedList []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		if err != nil {
			cli.Fatalf("dfarm: bad seed %q: %v", s, err)
		}
		seedList = append(seedList, v)
	}

	var jobs []campaign.Job
	if *arch == "rmt" || *arch == "all" {
		benchmarks := spec.Match(*run)
		if len(benchmarks) == 0 && *arch == "rmt" {
			cli.Fatalf("dfarm: -run %q matches no rmt benchmark (have %v)", *run, spec.Names())
		}
		if len(benchmarks) > 0 {
			rmtJobs, err := campaign.Matrix(benchmarks, optLevels, seedList, *packets)
			if err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
			jobs = append(jobs, rmtJobs...)
		}
	}
	if *arch == "drmt" || *arch == "all" {
		benchmarks := drmt.MatchBenchmarks(*run)
		if len(benchmarks) == 0 && *arch == "drmt" {
			cli.Fatalf("dfarm: -run %q matches no dRMT benchmark (have %v)", *run, drmt.BenchmarkNames())
		}
		if len(benchmarks) > 0 {
			drmtJobs, err := campaign.DRMTMatrix(benchmarks, seedList, *packets)
			if err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
			jobs = append(jobs, drmtJobs...)
		}
	}
	if len(jobs) == 0 {
		cli.Fatalf("dfarm: -run %q matches no benchmark in any architecture", *run)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, runErr := campaign.Run(ctx, jobs, campaign.Options{
		Workers:            *workers,
		ShardSize:          *shard,
		MaxCounterexamples: *maxCE,
		FailFast:           *failfast,
	})
	if report == nil {
		cli.Fatalf("dfarm: %v", runErr)
	}

	// With -json - the JSON document owns stdout; the text report moves to
	// stderr so stdout stays machine-parseable.
	if *jsonPath == "-" {
		fmt.Fprint(os.Stderr, report.Text(*timing))
		if err := report.WriteJSON(os.Stdout, *timing); err != nil {
			cli.Fatalf("dfarm: %v", err)
		}
	} else {
		fmt.Print(report.Text(*timing))
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
			defer f.Close()
			if err := report.WriteJSON(f, *timing); err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dfarm: campaign cancelled: %v\n", runErr)
	}
	if !report.Passed {
		os.Exit(1)
	}
}
