// dfarm runs parallel fuzzing campaigns: the Fig. 5 compiler-testing
// workflow fanned out over a job matrix on a bounded worker pool. Each
// job's target is built once, its packet budget is sharded into
// deterministically sub-seeded chunks, and shard results merge into a
// report that is byte-identical for every -workers value — so campaign
// output can be diffed across machines and runs.
//
// Two architectures are available as job targets. -arch rmt (the default)
// sweeps the Table-1 benchmark matrix over all four pipeline engines
// (unoptimized, scc, scc+inline, compiled); -arch drmt sweeps the dRMT
// benchmark set, fuzzing the ISA-level machine (§7) against the
// interpreted mini-P4 semantics (§4); -arch all runs both. -traffic adds
// the boundary-value adversarial regime as a matrix axis, and -procs
// sweeps dRMT processor-count variants.
//
// -mode selects the campaign phases. The default, fuzz, is the random
// differential workload above. -mode verify instead runs SAT-based bounded
// equivalence proofs (§7) over the rmt benchmarks: each job's cells span a
// -vbits × -vsteps proof grid, every cell is an independent shard decided
// on the worker pool, and verdicts (proven, counterexample, unknown) carry
// the instance's SAT statistics. -mode both chains the two: verification
// runs first and every counterexample trace it decodes is replayed as seed
// traffic at the start of each fuzz shard, so a proof refutation
// immediately becomes a deterministic fuzz regression. Verify cells are
// pure functions of the (spec, machine code, grid) content, so a daemon's
// shard cache replays them on resubmission without re-proving anything.
//
// With -server, dfarm becomes a client of a dfarmd campaign daemon: the
// same flags are submitted as a JSON matrix, the daemon streams one NDJSON
// row per job as jobs complete, and dfarm reassembles and renders them
// byte-identically to an offline run — except that the daemon's
// content-addressed shard cache replays unchanged work instead of
// re-executing it (-timing shows the hit counters).
//
//	dfarm -packets 50000 -workers 8
//	dfarm -run flowlets -levels scc+inline,compiled -seeds 1,2,3 -json report.json
//	dfarm -arch drmt -packets 20000 -procs 2,4,8
//	dfarm -arch all -traffic uniform,boundary -failfast -timing
//	dfarm -mode verify -vbits 3,5 -vsteps 2,3
//	dfarm -mode both -run sampling -packets 10000
//	dfarm -server http://localhost:8844 -run lru -json report.json
//
// Exit status: 0 when every job passes; 1 when any job fails (mismatch,
// simulation error, unproven verification cell or abort) or on usage
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/farmd"
	"druzhba/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("dfarm", flag.ExitOnError)
	arch := fs.String("arch", "rmt", "architectures to campaign over: rmt, drmt or all")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); offline mode only")
	packets := fs.Int("packets", 50000, "random PHVs per job (the paper's workload is 50000)")
	shard := fs.Int("shard", 4096, "packets per shard (part of the campaign's identity; changing it changes the traffic)")
	batch := fs.Int("batch", 0, "PHV-batch size: execute shards this many packets at a time on struct-of-arrays planes (0 = streaming; reports are byte-identical for every value)")
	seeds := fs.String("seeds", "1", "comma-separated traffic seeds; each seed adds a full matrix sweep")
	levels := fs.String("levels", "", "comma-separated optimization levels (empty = unoptimized,scc,scc+inline,compiled)")
	traffic := fs.String("traffic", "", "comma-separated traffic modes: uniform, boundary (empty = uniform)")
	procs := fs.String("procs", "", "comma-separated dRMT processor-count variants (empty = benchmark defaults)")
	run := fs.String("run", "", "only benchmarks whose name contains this substring")
	mode := fs.String("mode", "fuzz", "campaign phases: fuzz, verify, or both (verify first, feeding counterexample traces into the fuzzer)")
	vbits := fs.String("vbits", "", "comma-separated verification bit widths (verify/both modes; empty = 4,6)")
	vsteps := fs.String("vsteps", "", "comma-separated transaction-unrolling depths (verify/both modes; empty = 2)")
	budget := fs.Int64("budget", 0, "solver conflict budget per proof cell (0 = unlimited; exhaustion yields an unknown verdict)")
	maxCE := fs.Int("max-counterexamples", 8, "deduplicated counterexamples kept per job (-1 = unbounded)")
	failfast := fs.Bool("failfast", false, "cancel the campaign at the first failing shard")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock budget (0 = unbounded)")
	server := fs.String("server", "", "submit the matrix to this dfarmd/dcoord base URL instead of executing locally")
	authToken := fs.String("auth-token", "", "bearer token for -server submissions (the fleet's shared secret)")
	jsonPath := fs.String("json", "", "write the report as JSON to this file (- for stdout)")
	timing := fs.Bool("timing", false, "include workers/elapsed/cache metadata in the report (breaks byte-identity across -workers and cache states)")
	tracePath := fs.String("trace", "", "journal campaign/job/shard lifecycle events as NDJSON to this file; offline mode only (empty = off; the report stays byte-identical)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() > 0 {
		cli.Fatalf("dfarm: unexpected argument %q (all options are flags)", fs.Arg(0))
	}

	seedList, err := farmd.ParseSeeds(*seeds)
	if err != nil {
		cli.Fatalf("dfarm: %v", err)
	}
	procList, err := farmd.ParseProcs(*procs)
	if err != nil {
		cli.Fatalf("dfarm: %v", err)
	}
	vbitsList, err := farmd.ParseInts(*vbits)
	if err != nil {
		cli.Fatalf("dfarm: -vbits: %v", err)
	}
	vstepsList, err := farmd.ParseInts(*vsteps)
	if err != nil {
		cli.Fatalf("dfarm: -vsteps: %v", err)
	}
	req := &farmd.MatrixRequest{
		Arch:               *arch,
		Run:                *run,
		Levels:             farmd.SplitList(*levels),
		Traffic:            farmd.SplitList(*traffic),
		Procs:              procList,
		Seeds:              seedList,
		Packets:            *packets,
		ShardSize:          *shard,
		Batch:              *batch,
		MaxCounterexamples: *maxCE,
		FailFast:           *failfast,
		JobTimeoutMS:       (*jobTimeout).Milliseconds(),
		Mode:               *mode,
		VerifyBits:         vbitsList,
		VerifySteps:        vstepsList,
		MaxConflicts:       *budget,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var report *campaign.Report
	var runErr error
	if *server != "" {
		// Against a fabric coordinator the stream is resumable: a severed
		// connection reattaches at the last received row while the
		// campaign keeps running server-side.
		report, runErr = farmd.SubmitOpts(ctx, *server, req, farmd.StreamOptions{Token: *authToken}, nil)
		// A stream that died mid-campaign still yields the rows received
		// so far; render them like an offline cancelled run. Only a
		// submission that produced nothing at all is fatal.
		if report == nil || (runErr != nil && len(report.Jobs) == 0) {
			cli.Fatalf("dfarm: %v", runErr)
		}
	} else {
		var tracer *obs.Tracer
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				cli.Fatalf("dfarm: -trace: %v", err)
			}
			defer f.Close()
			tracer = obs.NewTracer(f, nil)
		}
		report, runErr = farmd.RunMatrix(ctx, req, campaign.Options{
			Workers:            *workers,
			ShardSize:          *shard,
			BatchSize:          *batch,
			MaxCounterexamples: *maxCE,
			FailFast:           *failfast,
			JobTimeout:         *jobTimeout,
			Trace:              tracer,
		})
		if report == nil {
			cli.Fatalf("dfarm: %v", runErr)
		}
	}

	// With -json - the JSON document owns stdout; the text report moves to
	// stderr so stdout stays machine-parseable.
	if *jsonPath == "-" {
		fmt.Fprint(os.Stderr, report.Text(*timing))
		if err := report.WriteJSON(os.Stdout, *timing); err != nil {
			cli.Fatalf("dfarm: %v", err)
		}
	} else {
		fmt.Print(report.Text(*timing))
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
			defer f.Close()
			if err := report.WriteJSON(f, *timing); err != nil {
				cli.Fatalf("dfarm: %v", err)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dfarm: campaign cancelled: %v\n", runErr)
	}
	if !report.Passed {
		os.Exit(1)
	}
}
