// dgen is Druzhba's pipeline code generator (§3.1-3.2 of the paper): it
// takes the pipeline dimensions, ALU descriptions and a machine code
// program, and emits an executable pipeline description as Go source, at
// one of the three optimization levels of Fig. 6.
//
// Usage:
//
//	dgen -depth 2 -width 2 -stateful pred_raw -code prog.mc -level scc+inline -o pipeline.go
package main

import (
	"flag"
	"fmt"
	"os"

	"druzhba/internal/cli"
	"druzhba/internal/codegen"
)

func main() {
	fs := flag.NewFlagSet("dgen", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	codePath := fs.String("code", "", "machine code file (name = value per line; - for stdin)")
	level := fs.String("level", "scc+inline", "optimization level: unoptimized, scc, scc+inline")
	pkg := fs.String("pkg", "pipeline", "package name for the generated source")
	out := fs.String("o", "", "output file (default stdout)")
	listPairs := fs.Bool("list-pairs", false, "list the machine code pairs the pipeline requires and exit")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	spec, err := cfg.Spec()
	if err != nil {
		cli.Fatalf("dgen: %v", err)
	}
	if *listPairs {
		req, err := spec.RequiredPairs()
		if err != nil {
			cli.Fatalf("dgen: %v", err)
		}
		for _, h := range req {
			if h.Domain > 0 {
				fmt.Printf("%s  # in [0,%d)\n", h.Name, h.Domain)
			} else {
				fmt.Printf("%s  # immediate\n", h.Name)
			}
		}
		return
	}
	if *codePath == "" {
		cli.Fatalf("dgen: -code is required (or use -list-pairs)")
	}
	code, err := cli.LoadMachineCode(*codePath)
	if err != nil {
		cli.Fatalf("dgen: %v", err)
	}
	lvl, err := cli.ParseLevel(*level)
	if err != nil {
		cli.Fatalf("dgen: %v", err)
	}
	src, err := codegen.Generate(spec, code, codegen.Options{Level: lvl, Package: *pkg})
	if err != nil {
		cli.Fatalf("dgen: %v", err)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		cli.Fatalf("dgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dgen: wrote %s (%d bytes, level %s)\n", *out, len(src), lvl)
}
