// dvet statically enforces the repo's two load-bearing invariants —
// byte-identical reports and zero-allocation hot paths — plus their
// supporting rules (injected clocks, cancellable blocking calls).
//
// Standalone:
//
//	dvet ./...                     # analyze packages, print findings
//
// As a go vet tool (what CI runs; covers test-variant packages too):
//
//	go build -o /tmp/dvet ./cmd/dvet
//	go vet -vettool=/tmp/dvet ./...
//
// The analyzers and the //dvet: annotation vocabulary are documented in
// README.md ("Static analysis") and the internal/vet/* package docs.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"druzhba/internal/vet/driver"
	"druzhba/internal/vet/suite"
)

func main() {
	// go vet's handshake: `dvet -V=full` must print "dvet version <id>"
	// where id keys the vet result cache, and `dvet -flags` must print
	// the tool's analyzer flags as JSON (dvet has none).
	versionFlag := flag.String("V", "", "print version (go vet protocol; use -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	flag.Parse()

	switch {
	case *versionFlag != "":
		fmt.Printf("dvet version %s\n", toolID())
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := driver.RunConfig(args[0], suite.Analyzers())
		exit(diags, err, 2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := driver.RunStandalone(args, suite.Analyzers())
	exit(diags, err, 1)
}

func exit(diags []driver.Diag, err error, failCode int) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Posn, d.Message, d.Analyzer)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvet: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		os.Exit(failCode)
	}
	os.Exit(0)
}

// toolID hashes the running binary so go vet's cache invalidates
// whenever the suite is rebuilt with different analyzer code.
func toolID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
