// dbench regenerates Table 1 of the paper: simulation runtime for the
// twelve packet-processing programs at the three optimization levels
// (unoptimized, SCC propagation, SCC + function inlining), each over 50,000
// traffic-generator PHVs.
//
// Usage:
//
//	dbench                 # full table, 50000 PHVs per cell
//	dbench -phvs 5000      # quicker pass
//	dbench -program rcp    # single row
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

func main() {
	fs := flag.NewFlagSet("dbench", flag.ExitOnError)
	phvs := fs.Int("phvs", 50000, "PHVs per benchmark run (the paper uses 50000)")
	program := fs.String("program", "", "run a single program (default: all twelve)")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	repeats := fs.Int("repeats", 1, "repetitions per cell (minimum time reported)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	benches := spec.All()
	if *program != "" {
		b, err := spec.Lookup(*program)
		if err != nil {
			cli.Fatalf("dbench: %v", err)
		}
		benches = []*spec.Benchmark{b}
	}

	fmt.Printf("Table 1: RMT runtimes with and without optimizations (%d PHVs per run)\n\n", *phvs)
	fmt.Printf("%-20s %-16s %-12s %14s %14s %18s\n",
		"Program", "Depth, width", "ALU name", "Unoptimized", "SCC prop.", "+ Func. inlining")
	for _, bm := range benches {
		times := make(map[core.OptLevel]time.Duration)
		for _, level := range core.Levels() {
			pipeline, err := bm.Pipeline(level)
			if err != nil {
				cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
			}
			gen := sim.NewTrafficGen(*seed, pipeline.PHVLen(), pipeline.Bits(), bm.MaxInput)
			trace := gen.Trace(*phvs)
			best := time.Duration(0)
			for r := 0; r < *repeats; r++ {
				pipeline.ResetState()
				start := time.Now()
				if _, err := sim.Run(pipeline, trace); err != nil {
					cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
				}
				elapsed := time.Since(start)
				if best == 0 || elapsed < best {
					best = elapsed
				}
			}
			times[level] = best
		}
		fmt.Printf("%-20s %-16s %-12s %11d ms %11d ms %15d ms\n",
			bm.Name,
			fmt.Sprintf("%d,%d", bm.Depth, bm.Width),
			bm.Atom,
			times[core.Unoptimized].Milliseconds(),
			times[core.SCCPropagation].Milliseconds(),
			times[core.SCCInlining].Milliseconds())
	}
}
