// dbench regenerates Table 1 of the paper: simulation runtime for the
// twelve packet-processing programs at the three optimization levels
// (unoptimized, SCC propagation, SCC + function inlining) plus Druzhba's
// closure-compiled engine, each over 50,000 traffic-generator PHVs driven
// through the streaming simulation engine. A dRMT section follows (the
// paper reports no dRMT numbers, so it is a characterization bench): every
// embedded dRMT benchmark's differential fuzzing loop is timed on both the
// slot-compiled streaming engines and the map-based compatibility engines.
//
// Usage:
//
//	dbench                           # full table, 50000 PHVs per cell
//	dbench -phvs 5000                # quicker pass
//	dbench -program rcp              # single RMT row
//	dbench -drmt-phvs 0              # skip the dRMT section
//	dbench -drmt-bench l2l3          # filter the dRMT section
//	dbench -json BENCH_table1.json   # machine-readable perf trajectory
//
// The JSON report records ns/PHV and allocs/PHV per (benchmark × level) and
// per (dRMT benchmark × engine); a "baseline" block already present in the
// output file is preserved across regenerations so the perf trajectory
// keeps its reference point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/drmt"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

// Row is one (benchmark × level) cell of the perf report.
type Row struct {
	Benchmark    string  `json:"benchmark"`
	Level        string  `json:"level"`
	MS           int64   `json:"ms"`
	NsPerPHV     float64 `json:"ns_per_phv"`
	AllocsPerPHV float64 `json:"allocs_per_phv"`
}

// DRMTRow is one (dRMT benchmark × engine) cell: the differential fuzzing
// loop timed on the slot-compiled engines ("slots") or the map-based
// compatibility engines ("map").
type DRMTRow struct {
	Benchmark    string  `json:"benchmark"`
	Engine       string  `json:"engine"`
	MS           int64   `json:"ms"`
	NsPerPHV     float64 `json:"ns_per_phv"`
	AllocsPerPHV float64 `json:"allocs_per_phv"`
	PHVsPerSec   float64 `json:"phvs_per_sec"`
}

// Report is the BENCH_table1.json document.
type Report struct {
	Command    string          `json:"command"`
	PHVs       int             `json:"phvs"`
	Engine     string          `json:"engine"`
	Rows       []Row           `json:"rows"`
	DRMTPHVs   int             `json:"drmt_phvs,omitempty"`
	DRMTEngine string          `json:"drmt_engine,omitempty"`
	DRMT       []DRMTRow       `json:"drmt,omitempty"`
	Baseline   json.RawMessage `json:"baseline,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("dbench", flag.ExitOnError)
	phvs := fs.Int("phvs", 50000, "PHVs per benchmark run (the paper uses 50000)")
	program := fs.String("program", "", "run a single program (default: all twelve)")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	repeats := fs.Int("repeats", 1, "repetitions per cell (minimum time reported)")
	drmtPHVs := fs.Int("drmt-phvs", 50000, "packets per dRMT differential-fuzz cell (0 = skip the dRMT section)")
	drmtBench := fs.String("drmt-bench", "", "restrict the dRMT section to benchmarks containing this substring")
	jsonPath := fs.String("json", "", "also write the report as JSON to this file (- for stdout)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if *repeats < 1 {
		// A zero-repeat run would report no timing at all (and +Inf
		// PHVs/sec in the dRMT section, which JSON cannot encode).
		*repeats = 1
	}

	benches := spec.All()
	if *program != "" {
		b, err := spec.Lookup(*program)
		if err != nil {
			cli.Fatalf("dbench: %v", err)
		}
		benches = []*spec.Benchmark{b}
	}

	var rows []Row
	fmt.Printf("Table 1: RMT runtimes with and without optimizations (%d PHVs per run, streaming engine)\n\n", *phvs)
	fmt.Printf("%-20s %-16s %-12s %14s %14s %18s %14s\n",
		"Program", "Depth, width", "ALU name", "Unoptimized", "SCC prop.", "+ Func. inlining", "Compiled")
	for _, bm := range benches {
		times := make(map[core.OptLevel]time.Duration)
		for _, level := range core.AllLevels() {
			pipeline, err := bm.Pipeline(level)
			if err != nil {
				cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
			}
			best, allocs, err := measure(pipeline, bm, *seed, *phvs, *repeats)
			if err != nil {
				cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
			}
			times[level] = best
			rows = append(rows, Row{
				Benchmark:    bm.Name,
				Level:        level.String(),
				MS:           best.Milliseconds(),
				NsPerPHV:     round2(float64(best.Nanoseconds()) / float64(*phvs)),
				AllocsPerPHV: round4(allocs / float64(*phvs)),
			})
		}
		fmt.Printf("%-20s %-16s %-12s %11d ms %11d ms %15d ms %11d ms\n",
			bm.Name,
			fmt.Sprintf("%d,%d", bm.Depth, bm.Width),
			bm.Atom,
			times[core.Unoptimized].Milliseconds(),
			times[core.SCCPropagation].Milliseconds(),
			times[core.SCCInlining].Milliseconds(),
			times[core.Compiled].Milliseconds())
	}
	var drmtRows []DRMTRow
	if *drmtPHVs > 0 {
		benches := drmt.MatchBenchmarks(*drmtBench)
		if len(benches) == 0 {
			cli.Fatalf("dbench: no dRMT benchmark matches %q", *drmtBench)
		}
		fmt.Printf("\ndRMT differential fuzzing (ISA machine vs table-level spec, %d packets per run)\n\n", *drmtPHVs)
		fmt.Printf("%-16s %14s %14s %16s %16s\n", "Program", "Map engine", "Slot engine", "Slot PHVs/sec", "Slot allocs/PHV")
		for _, bm := range benches {
			var perEngine [2]DRMTRow
			for i, engine := range []string{"map", "slots"} {
				row, err := measureDRMT(bm, engine, *seed, *drmtPHVs, *repeats)
				if err != nil {
					cli.Fatalf("dbench: drmt %s/%s: %v", bm.Name, engine, err)
				}
				perEngine[i] = row
				drmtRows = append(drmtRows, row)
			}
			fmt.Printf("%-16s %11d ms %11d ms %16.0f %16.4f\n",
				bm.Name, perEngine[0].MS, perEngine[1].MS, perEngine[1].PHVsPerSec, perEngine[1].AllocsPerPHV)
		}
	}

	if *jsonPath != "" {
		// Record the actual invocation so a partial run (-program, a
		// non-default -phvs) cannot masquerade as the canonical full-matrix
		// trajectory.
		command := fmt.Sprintf("go run ./cmd/dbench -phvs %d", *phvs)
		if *program != "" {
			command += " -program " + *program
		}
		if *drmtPHVs != 50000 {
			command += fmt.Sprintf(" -drmt-phvs %d", *drmtPHVs)
		}
		if *drmtBench != "" {
			command += " -drmt-bench " + *drmtBench
		}
		command += " -json BENCH_table1.json"
		rep := &Report{
			Command: command,
			PHVs:    *phvs,
			Engine:  "streaming (sim.Stream, prechecked fast path at optimized levels)",
			Rows:    rows,
		}
		if len(drmtRows) > 0 {
			rep.DRMTPHVs = *drmtPHVs
			rep.DRMTEngine = "differential fuzz, slot-compiled streaming engines (drmt.DiffFuzzer.Fuzz) vs map-based compat (FuzzCompat)"
			rep.DRMT = drmtRows
		}
		if err := writeJSON(*jsonPath, rep); err != nil {
			cli.Fatalf("dbench: %v", err)
		}
	}
}

// measureDRMT times one dRMT benchmark's differential fuzzing loop on one
// engine ("slots" or "map"), repeated repeats times after one warmup pass;
// the best pass's wall time and its heap allocation count are reported.
func measureDRMT(bm *drmt.Benchmark, engine string, seed int64, n, repeats int) (DRMTRow, error) {
	prog, err := bm.Program()
	if err != nil {
		return DRMTRow{}, err
	}
	entries, err := bm.Entries(prog)
	if err != nil {
		return DRMTRow{}, err
	}
	f, err := drmt.NewDiffFuzzer(prog, nil, entries, bm.HW)
	if err != nil {
		return DRMTRow{}, err
	}
	pass := func() (time.Duration, float64, error) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var rep *drmt.DiffReport
		if engine == "slots" {
			rep, err = f.FuzzSeeded(seed, n, bm.MaxInput)
		} else {
			rep, err = f.FuzzSeededCompat(seed, n, bm.MaxInput)
		}
		if err != nil {
			return 0, 0, err
		}
		if !rep.Passed() {
			return 0, 0, fmt.Errorf("differential fuzz failed: %d diffs, err=%v", len(rep.Diffs), rep.Err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return elapsed, float64(m1.Mallocs - m0.Mallocs), nil
	}
	if _, _, err := pass(); err != nil { // warmup
		return DRMTRow{}, err
	}
	var best time.Duration
	var bestAllocs float64
	for r := 0; r < repeats; r++ {
		elapsed, allocs, err := pass()
		if err != nil {
			return DRMTRow{}, err
		}
		if best == 0 || elapsed < best {
			best, bestAllocs = elapsed, allocs
		}
	}
	return DRMTRow{
		Benchmark:    bm.Name,
		Engine:       engine,
		MS:           best.Milliseconds(),
		NsPerPHV:     round2(float64(best.Nanoseconds()) / float64(n)),
		AllocsPerPHV: round4(bestAllocs / float64(n)),
		PHVsPerSec:   round2(float64(n) / best.Seconds()),
	}, nil
}

// measure drives n PHVs from a fresh generator through the streaming engine,
// repeated repeats times after one warmup pass, and reports the best wall
// time together with the heap allocation count of that pass.
func measure(pipeline *core.Pipeline, bm *spec.Benchmark, seed int64, n, repeats int) (time.Duration, float64, error) {
	stream := sim.NewStream(pipeline)
	in := make([]phv.Value, pipeline.PHVLen())
	pass := func() (time.Duration, float64, error) {
		gen := sim.NewTrafficGen(seed, pipeline.PHVLen(), pipeline.Bits(), bm.MaxInput)
		pipeline.ResetState()
		stream.Reset()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for fed := 0; fed < n || stream.InFlight() > 0; {
			var admit []phv.Value
			if fed < n {
				gen.Fill(in)
				admit = in
				fed++
			}
			if _, err := stream.Tick(admit); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return elapsed, float64(m1.Mallocs - m0.Mallocs), nil
	}
	if _, _, err := pass(); err != nil { // warmup
		return 0, 0, err
	}
	var best time.Duration
	var bestAllocs float64
	for r := 0; r < repeats; r++ {
		elapsed, allocs, err := pass()
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || elapsed < best {
			best, bestAllocs = elapsed, allocs
		}
	}
	return best, bestAllocs, nil
}

// writeJSON writes the report, preserving any "baseline" block already
// present in the target file so regeneration keeps the trajectory's
// reference point.
func writeJSON(path string, rep *Report) error {
	if path != "-" {
		if prev, err := os.ReadFile(path); err == nil {
			var old Report
			if json.Unmarshal(prev, &old) == nil {
				rep.Baseline = old.Baseline
			}
		}
	}
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
