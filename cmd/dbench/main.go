// dbench regenerates Table 1 of the paper: simulation runtime for the
// twelve packet-processing programs at the three optimization levels
// (unoptimized, SCC propagation, SCC + function inlining) plus Druzhba's
// closure-compiled engine, each over 50,000 traffic-generator PHVs driven
// through the streaming simulation engine. A dRMT section follows (the
// paper reports no dRMT numbers, so it is a characterization bench): every
// embedded dRMT benchmark's differential fuzzing loop is timed on both the
// slot-compiled streaming engines and the map-based compatibility engines.
//
// A PHV-batch row rides along with each section: the RMT matrix gains a
// "compiled+batch" level (the struct-of-arrays sim.Batch engine over the
// compiled pipeline) and the dRMT section a "slots+batch" engine (the
// differential fuzzer on column-major planes), so BENCH_table1.json records
// the batched engines' trajectory next to the streaming ones.
//
// Usage:
//
//	dbench                           # full table, 50000 PHVs per cell
//	dbench -phvs 5000                # quicker pass
//	dbench -program rcp,blue-burst   # restrict the RMT rows
//	dbench -batch 256                # PHV-batch size for the batch rows
//	dbench -drmt-phvs 0              # skip the dRMT section
//	dbench -drmt-bench l2l3          # filter the dRMT section
//	dbench -json BENCH_table1.json   # machine-readable perf trajectory
//	dbench -check -phvs 2000         # ns/PHV regression gate vs baseline
//
// The JSON report records ns/PHV and allocs/PHV per (benchmark × level) and
// per (dRMT benchmark × engine), a per-engine geomean summary, and the Go
// toolchain/CPU the numbers came from; a "baseline" block already present
// in the output file is preserved across regenerations so the perf
// trajectory keeps its reference point.
//
// -check is the CI regression gate: it reruns the selected cells, matches
// them against the checked-in report (-baseline, default BENCH_table1.json)
// and fails when any engine's geomean fresh/baseline ns/PHV ratio exceeds
// 1 + -tolerance. -selftest inflates the fresh numbers past the tolerance
// and requires the gate to trip, proving the gate detects regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/drmt"
	"druzhba/internal/phv"
	"druzhba/internal/sim"
	"druzhba/internal/spec"
)

// Row is one (benchmark × level) cell of the perf report.
type Row struct {
	Benchmark    string  `json:"benchmark"`
	Level        string  `json:"level"`
	MS           int64   `json:"ms"`
	NsPerPHV     float64 `json:"ns_per_phv"`
	AllocsPerPHV float64 `json:"allocs_per_phv"`
}

// DRMTRow is one (dRMT benchmark × engine) cell: the differential fuzzing
// loop timed on the slot-compiled engines ("slots") or the map-based
// compatibility engines ("map").
type DRMTRow struct {
	Benchmark    string  `json:"benchmark"`
	Engine       string  `json:"engine"`
	MS           int64   `json:"ms"`
	NsPerPHV     float64 `json:"ns_per_phv"`
	AllocsPerPHV float64 `json:"allocs_per_phv"`
	PHVsPerSec   float64 `json:"phvs_per_sec"`
}

// Report is the BENCH_table1.json document.
type Report struct {
	Command    string    `json:"command"`
	GoVersion  string    `json:"go_version,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	PHVs       int       `json:"phvs"`
	Batch      int       `json:"batch,omitempty"`
	Engine     string    `json:"engine"`
	Rows       []Row     `json:"rows"`
	DRMTPHVs   int       `json:"drmt_phvs,omitempty"`
	DRMTEngine string    `json:"drmt_engine,omitempty"`
	DRMT       []DRMTRow `json:"drmt,omitempty"`
	// Geomeans summarizes the table per engine: the geometric mean ns/PHV
	// across the engine's benchmarks, keyed "rmt/<level>" and
	// "drmt/<engine>". The regression gate (-check) compares these shapes.
	Geomeans map[string]float64 `json:"geomeans,omitempty"`
	Baseline json.RawMessage    `json:"baseline,omitempty"`
}

// engineKey groups report cells by execution engine for the geomean summary
// and the regression gate.
func engineKey(arch, engine string) string { return arch + "/" + engine }

// geomeans folds the report's rows into per-engine geometric means of
// ns/PHV. Map iteration never leaks into the output: encoding/json emits
// map keys sorted.
func geomeans(rows []Row, drmtRows []DRMTRow) map[string]float64 {
	vals := map[string][]float64{}
	for _, r := range rows {
		k := engineKey("rmt", r.Level)
		vals[k] = append(vals[k], r.NsPerPHV)
	}
	for _, r := range drmtRows {
		k := engineKey("drmt", r.Engine)
		vals[k] = append(vals[k], r.NsPerPHV)
	}
	out := make(map[string]float64, len(vals))
	for k, v := range vals {
		out[k] = round2(geomean(v))
	}
	return out
}

// geomean is the geometric mean of strictly positive samples.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// cpuModel identifies the benchmarking CPU for the report's provenance
// header (best effort: /proc/cpuinfo on Linux, the architecture elsewhere).
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
			}
		}
	}
	return runtime.GOARCH
}

func main() {
	fs := flag.NewFlagSet("dbench", flag.ExitOnError)
	phvs := fs.Int("phvs", 50000, "PHVs per benchmark run (the paper uses 50000)")
	program := fs.String("program", "", "comma-separated programs to run (default: all twelve)")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	repeats := fs.Int("repeats", 1, "repetitions per cell (minimum time reported)")
	batch := fs.Int("batch", 64, "PHV-batch size for the compiled+batch and slots+batch rows (0 = skip them)")
	drmtPHVs := fs.Int("drmt-phvs", 50000, "packets per dRMT differential-fuzz cell (0 = skip the dRMT section)")
	drmtBench := fs.String("drmt-bench", "", "restrict the dRMT section to benchmarks containing this substring")
	jsonPath := fs.String("json", "", "also write the report as JSON to this file (- for stdout)")
	check := fs.Bool("check", false, "regression gate: compare this run's ns/PHV against -baseline and fail past -tolerance")
	baselinePath := fs.String("baseline", "BENCH_table1.json", "checked-in report the -check gate compares against")
	tolerance := fs.Float64("tolerance", 0.25, "-check failure threshold: fail when an engine's geomean fresh/baseline ratio exceeds 1+tolerance")
	selftest := fs.Bool("selftest", false, "with -check: synthesize a regression and require the gate to trip (exit 0 = gate works)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if *repeats < 1 {
		// A zero-repeat run would report no timing at all (and +Inf
		// PHVs/sec in the dRMT section, which JSON cannot encode).
		*repeats = 1
	}

	benches := spec.All()
	if *program != "" {
		benches = nil
		for _, name := range strings.Split(*program, ",") {
			b, err := spec.Lookup(strings.TrimSpace(name))
			if err != nil {
				cli.Fatalf("dbench: %v", err)
			}
			benches = append(benches, b)
		}
	}

	var rows []Row
	fmt.Printf("Table 1: RMT runtimes with and without optimizations (%d PHVs per run, streaming engine)\n\n", *phvs)
	fmt.Printf("%-20s %-16s %-12s %14s %14s %18s %14s %14s\n",
		"Program", "Depth, width", "ALU name", "Unoptimized", "SCC prop.", "+ Func. inlining", "Compiled", "Batch")
	for _, bm := range benches {
		times := make(map[core.OptLevel]time.Duration)
		for _, level := range core.AllLevels() {
			pipeline, err := bm.Pipeline(level)
			if err != nil {
				cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
			}
			best, allocs, err := measure(pipeline, bm, *seed, *phvs, *repeats)
			if err != nil {
				cli.Fatalf("dbench: %s/%s: %v", bm.Name, level, err)
			}
			times[level] = best
			rows = append(rows, Row{
				Benchmark:    bm.Name,
				Level:        level.String(),
				MS:           best.Milliseconds(),
				NsPerPHV:     round2(float64(best.Nanoseconds()) / float64(*phvs)),
				AllocsPerPHV: round4(allocs / float64(*phvs)),
			})
		}
		batchMS := int64(-1)
		if *batch > 0 {
			// The PHV-batch row: the compiled pipeline driven by the
			// struct-of-arrays engine, batch columns at a time.
			pipeline, err := bm.Pipeline(core.Compiled)
			if err != nil {
				cli.Fatalf("dbench: %s/compiled+batch: %v", bm.Name, err)
			}
			best, allocs, err := measureBatch(pipeline, bm, *seed, *phvs, *repeats, *batch)
			if err != nil {
				cli.Fatalf("dbench: %s/compiled+batch: %v", bm.Name, err)
			}
			batchMS = best.Milliseconds()
			rows = append(rows, Row{
				Benchmark:    bm.Name,
				Level:        "compiled+batch",
				MS:           batchMS,
				NsPerPHV:     round2(float64(best.Nanoseconds()) / float64(*phvs)),
				AllocsPerPHV: round4(allocs / float64(*phvs)),
			})
		}
		batchCell := "-"
		if batchMS >= 0 {
			batchCell = fmt.Sprintf("%d ms", batchMS)
		}
		fmt.Printf("%-20s %-16s %-12s %11d ms %11d ms %15d ms %11d ms %14s\n",
			bm.Name,
			fmt.Sprintf("%d,%d", bm.Depth, bm.Width),
			bm.Atom,
			times[core.Unoptimized].Milliseconds(),
			times[core.SCCPropagation].Milliseconds(),
			times[core.SCCInlining].Milliseconds(),
			times[core.Compiled].Milliseconds(),
			batchCell)
	}
	var drmtRows []DRMTRow
	if *drmtPHVs > 0 {
		benches := drmt.MatchBenchmarks(*drmtBench)
		if len(benches) == 0 {
			cli.Fatalf("dbench: no dRMT benchmark matches %q", *drmtBench)
		}
		fmt.Printf("\ndRMT differential fuzzing (ISA machine vs table-level spec, %d packets per run)\n\n", *drmtPHVs)
		fmt.Printf("%-16s %14s %14s %14s %16s %16s\n", "Program", "Map engine", "Slot engine", "Batch engine", "Batch PHVs/sec", "Batch allocs/PHV")
		engines := []string{"map", "slots"}
		if *batch > 0 {
			engines = append(engines, "slots+batch")
		}
		for _, bm := range benches {
			perEngine := make(map[string]DRMTRow, len(engines))
			for _, engine := range engines {
				row, err := measureDRMT(bm, engine, *seed, *drmtPHVs, *repeats, *batch)
				if err != nil {
					cli.Fatalf("dbench: drmt %s/%s: %v", bm.Name, engine, err)
				}
				perEngine[engine] = row
				drmtRows = append(drmtRows, row)
			}
			batchCell, phvsCell, allocsCell := "-", "-", "-"
			if br, ok := perEngine["slots+batch"]; ok {
				batchCell = fmt.Sprintf("%d ms", br.MS)
				phvsCell = fmt.Sprintf("%.0f", br.PHVsPerSec)
				allocsCell = fmt.Sprintf("%.4f", br.AllocsPerPHV)
			}
			fmt.Printf("%-16s %11d ms %11d ms %14s %16s %16s\n",
				bm.Name, perEngine["map"].MS, perEngine["slots"].MS, batchCell, phvsCell, allocsCell)
		}
	}

	if *jsonPath != "" {
		// Record the actual invocation so a partial run (-program, a
		// non-default -phvs) cannot masquerade as the canonical full-matrix
		// trajectory.
		command := fmt.Sprintf("go run ./cmd/dbench -phvs %d", *phvs)
		if *program != "" {
			command += " -program " + *program
		}
		if *batch != 64 {
			command += fmt.Sprintf(" -batch %d", *batch)
		}
		if *drmtPHVs != 50000 {
			command += fmt.Sprintf(" -drmt-phvs %d", *drmtPHVs)
		}
		if *drmtBench != "" {
			command += " -drmt-bench " + *drmtBench
		}
		command += " -json BENCH_table1.json"
		rep := &Report{
			Command:   command,
			GoVersion: runtime.Version(),
			CPU:       cpuModel(),
			PHVs:      *phvs,
			Batch:     *batch,
			Engine:    "streaming (sim.Stream, prechecked fast path at optimized levels); compiled+batch rows on the struct-of-arrays sim.Batch engine",
			Rows:      rows,
		}
		if len(drmtRows) > 0 {
			rep.DRMTPHVs = *drmtPHVs
			rep.DRMTEngine = "differential fuzz, slot-compiled streaming engines (drmt.DiffFuzzer.Fuzz) vs map-based compat (FuzzCompat); slots+batch rows on column-major planes"
			rep.DRMT = drmtRows
		}
		rep.Geomeans = geomeans(rows, drmtRows)
		if err := writeJSON(*jsonPath, rep); err != nil {
			cli.Fatalf("dbench: %v", err)
		}
	}

	if *check {
		if *selftest {
			// Inflate the fresh numbers far past the tolerance; a working
			// gate must trip on them.
			scale := 2 * (1 + *tolerance)
			for i := range rows {
				rows[i].NsPerPHV *= scale
			}
			for i := range drmtRows {
				drmtRows[i].NsPerPHV *= scale
			}
		}
		err := checkRegression(*baselinePath, rows, drmtRows, *tolerance)
		if *selftest {
			if err == nil {
				cli.Fatalf("dbench: -selftest: gate did not trip on a synthetic %.0f%% regression", 100*2*(1+*tolerance))
			}
			fmt.Printf("\nselftest: gate tripped as required: %v\n", err)
			return
		}
		if err != nil {
			cli.Fatalf("dbench: %v", err)
		}
		fmt.Printf("\ncheck: ns/PHV within %.0f%% of %s per engine\n", 100**tolerance, *baselinePath)
	}
}

// checkRegression compares this run's ns/PHV cells against the checked-in
// baseline report: cells are matched on (benchmark, level/engine), each
// engine's fresh/baseline ratios are folded into a geometric mean, and any
// engine whose geomean exceeds 1+tolerance fails the gate. Cells absent
// from the baseline (new benchmarks, new engines) are skipped; an engine
// with no matched cells is skipped too.
func checkRegression(baselinePath string, rows []Row, drmtRows []DRMTRow, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check: %s: %w", baselinePath, err)
	}
	baseNs := map[string]float64{}
	for _, r := range base.Rows {
		baseNs[engineKey("rmt", r.Level)+"/"+r.Benchmark] = r.NsPerPHV
	}
	for _, r := range base.DRMT {
		baseNs[engineKey("drmt", r.Engine)+"/"+r.Benchmark] = r.NsPerPHV
	}
	ratios := map[string][]float64{}
	matched := 0
	add := func(engine, benchmark string, fresh float64) {
		b, ok := baseNs[engine+"/"+benchmark]
		if !ok || b <= 0 || fresh <= 0 {
			return
		}
		ratios[engine] = append(ratios[engine], fresh/b)
		matched++
	}
	for _, r := range rows {
		add(engineKey("rmt", r.Level), r.Benchmark, r.NsPerPHV)
	}
	for _, r := range drmtRows {
		add(engineKey("drmt", r.Engine), r.Benchmark, r.NsPerPHV)
	}
	if matched == 0 {
		return fmt.Errorf("-check: no cell of this run matches %s", baselinePath)
	}
	engines := make([]string, 0, len(ratios))
	for e := range ratios {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	var failures []string
	fmt.Printf("\nregression gate vs %s (tolerance %.0f%%):\n", baselinePath, 100*tolerance)
	for _, e := range engines {
		g := geomean(ratios[e])
		status := "ok"
		if g > 1+tolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s %.2fx", e, g))
		}
		fmt.Printf("  %-24s geomean ratio %.3f over %d cells  %s\n", e, g, len(ratios[e]), status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("-check: ns/PHV regression past %.0f%%: %s", 100*tolerance, strings.Join(failures, ", "))
	}
	return nil
}

// measureBatch drives n PHVs through the struct-of-arrays batch engine,
// batch columns at a time, repeated repeats times after one warmup pass; it
// reports the best wall time and that pass's heap allocation count. Traffic
// and pipeline state match measure exactly, so the two rows time the same
// work on different engines.
func measureBatch(pipeline *core.Pipeline, bm *spec.Benchmark, seed int64, n, repeats, batch int) (time.Duration, float64, error) {
	b, err := sim.NewBatch(pipeline, batch)
	if err != nil {
		return 0, 0, err
	}
	in := make([]phv.Value, pipeline.PHVLen())
	pass := func() (time.Duration, float64, error) {
		gen := sim.NewTrafficGen(seed, pipeline.PHVLen(), pipeline.Bits(), bm.MaxInput)
		pipeline.ResetState()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for at := 0; at < n; at += batch {
			m := batch
			if n-at < m {
				m = n - at
			}
			for k := 0; k < m; k++ {
				gen.Fill(in)
				b.Load(k, in)
			}
			if err := b.Run(m); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return elapsed, float64(m1.Mallocs - m0.Mallocs), nil
	}
	if _, _, err := pass(); err != nil { // warmup
		return 0, 0, err
	}
	var best time.Duration
	var bestAllocs float64
	for r := 0; r < repeats; r++ {
		elapsed, allocs, err := pass()
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || elapsed < best {
			best, bestAllocs = elapsed, allocs
		}
	}
	return best, bestAllocs, nil
}

// measureDRMT times one dRMT benchmark's differential fuzzing loop on one
// engine ("slots", "slots+batch" or "map"), repeated repeats times after
// one warmup pass; the best pass's wall time and its heap allocation count
// are reported.
func measureDRMT(bm *drmt.Benchmark, engine string, seed int64, n, repeats, batch int) (DRMTRow, error) {
	prog, err := bm.Program()
	if err != nil {
		return DRMTRow{}, err
	}
	entries, err := bm.Entries(prog)
	if err != nil {
		return DRMTRow{}, err
	}
	f, err := drmt.NewDiffFuzzer(prog, nil, entries, bm.HW)
	if err != nil {
		return DRMTRow{}, err
	}
	if engine == "slots+batch" {
		f.SetBatch(batch)
	}
	pass := func() (time.Duration, float64, error) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var rep *drmt.DiffReport
		if engine == "map" {
			rep, err = f.FuzzSeededCompat(seed, n, bm.MaxInput)
		} else {
			rep, err = f.FuzzSeeded(seed, n, bm.MaxInput) // batched when SetBatch is active
		}
		if err != nil {
			return 0, 0, err
		}
		if !rep.Passed() {
			return 0, 0, fmt.Errorf("differential fuzz failed: %d diffs, err=%v", len(rep.Diffs), rep.Err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return elapsed, float64(m1.Mallocs - m0.Mallocs), nil
	}
	if _, _, err := pass(); err != nil { // warmup
		return DRMTRow{}, err
	}
	var best time.Duration
	var bestAllocs float64
	for r := 0; r < repeats; r++ {
		elapsed, allocs, err := pass()
		if err != nil {
			return DRMTRow{}, err
		}
		if best == 0 || elapsed < best {
			best, bestAllocs = elapsed, allocs
		}
	}
	return DRMTRow{
		Benchmark:    bm.Name,
		Engine:       engine,
		MS:           best.Milliseconds(),
		NsPerPHV:     round2(float64(best.Nanoseconds()) / float64(n)),
		AllocsPerPHV: round4(bestAllocs / float64(n)),
		PHVsPerSec:   round2(float64(n) / best.Seconds()),
	}, nil
}

// measure drives n PHVs from a fresh generator through the streaming engine,
// repeated repeats times after one warmup pass, and reports the best wall
// time together with the heap allocation count of that pass.
func measure(pipeline *core.Pipeline, bm *spec.Benchmark, seed int64, n, repeats int) (time.Duration, float64, error) {
	stream := sim.NewStream(pipeline)
	in := make([]phv.Value, pipeline.PHVLen())
	pass := func() (time.Duration, float64, error) {
		gen := sim.NewTrafficGen(seed, pipeline.PHVLen(), pipeline.Bits(), bm.MaxInput)
		pipeline.ResetState()
		stream.Reset()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for fed := 0; fed < n || stream.InFlight() > 0; {
			var admit []phv.Value
			if fed < n {
				gen.Fill(in)
				admit = in
				fed++
			}
			if _, err := stream.Tick(admit); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return elapsed, float64(m1.Mallocs - m0.Mallocs), nil
	}
	if _, _, err := pass(); err != nil { // warmup
		return 0, 0, err
	}
	var best time.Duration
	var bestAllocs float64
	for r := 0; r < repeats; r++ {
		elapsed, allocs, err := pass()
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || elapsed < best {
			best, bestAllocs = elapsed, allocs
		}
	}
	return best, bestAllocs, nil
}

// writeJSON writes the report, preserving any "baseline" block already
// present in the target file so regeneration keeps the trajectory's
// reference point.
func writeJSON(path string, rep *Report) error {
	if path != "-" {
		if prev, err := os.ReadFile(path); err == nil {
			var old Report
			if json.Unmarshal(prev, &old) == nil {
				rep.Baseline = old.Baseline
			}
		}
	}
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
