// dcoord is the distributed campaign coordinator: the fabric's control
// plane. It accepts the same JSON campaign matrices as dfarmd, but instead
// of executing every shard itself it leases shards out to a fleet of
// registered dfarmd workers (dfarmd -coord), with deadlines, capped
// exponential backoff, cooldown for unreachable workers and poison
// quarantine for shards that fail on distinct workers — and it degrades
// gracefully to local execution whenever the fleet drains to zero. Because
// shard results are pure functions of their lease, the streamed report is
// byte-identical to a single-process run of the same matrix no matter
// which workers died, which leases were retried, or whether the fabric
// fell back to local execution.
//
// Campaign streams are resumable: the response carries a Campaign-Id
// header, every row is journaled (-journal-dir), and a client that
// reconnects with a Last-Row header replays from where it left off while
// the campaign keeps running server-side. The journal doubles as the job
// queue's persistence — a restarted coordinator re-runs unfinished
// campaigns (cheaply, through the warm shard cache) and replays completed
// ones from disk.
//
//	dcoord -addr :8850 -journal-dir /var/lib/dcoord -cache-dir /var/cache/dcoord -auth-token s3cret
//	dfarmd -addr :8845 -coord http://localhost:8850 -advertise http://localhost:8845 -auth-token s3cret
//	dfarm  -server http://localhost:8850 -auth-token s3cret -run lru -packets 50000
//
// Endpoints:
//
//	POST /v1/campaigns    submit a matrix, stream NDJSON rows (resumable)
//	POST /v1/workers      worker heartbeat
//	GET  /v1/workers      fleet snapshot
//	GET  /v1/shards/{key} shared shard store read (workers' remote tier)
//	PUT  /v1/shards/{key} shared shard store write
//	GET  /v1/stats        campaigns/rows/workers/dispatch counters, per-worker
//	                      lease-latency quantiles and poison forensics
//	GET  /metrics         Prometheus-text metrics (lease latency histograms,
//	                      retries, backoff, poison quarantines, fleet gauges)
//	GET  /healthz         liveness probe
//
// -trace journals campaign/job/shard/lease lifecycle events as NDJSON;
// -pprof mounts net/http/pprof on a separate listener, never the serving
// mux.
//
// On SIGINT/SIGTERM the coordinator stops accepting campaigns, drains
// subscriber streams for -drain-timeout, stops producers (their campaigns
// stay journaled for the next process) and flushes the disk cache tier.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"druzhba/internal/campaign"
	"druzhba/internal/cli"
	"druzhba/internal/fabric"
	"druzhba/internal/farmd"
	"druzhba/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("dcoord", flag.ExitOnError)
	addr := fs.String("addr", ":8850", "listen address")
	journalDir := fs.String("journal-dir", "", "campaign journal directory for resumable streams and restart recovery (empty = in-memory only)")
	cacheDir := fs.String("cache-dir", "", "persistent shard-cache directory for the fleet's shared store (empty = in-memory only)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory LRU capacity in shard results (0 = default)")
	cacheMaxMB := fs.Int64("cache-max-mb", 4096, "on-disk cache size cap in MiB (0 = unbounded)")
	noCache := fs.Bool("no-cache", false, "disable the shared shard store entirely")
	workers := fs.Int("workers", 0, "local engine pool size per campaign — lease parallelism, and local-fallback capacity (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 2, "campaigns executing at once; excess submissions queue")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job wall-clock budget (0 = unbounded)")
	rowTimeout := fs.Duration("row-timeout", 0, "per-row stream write deadline; a stalled subscriber loses only its stream, the campaign keeps running (0 = 30s, negative = unbounded)")
	authToken := fs.String("auth-token", "", "shared fleet secret; requires Authorization: Bearer on mutating endpoints and is forwarded on leases")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown window for subscriber streams")
	workerTTL := fs.Duration("worker-ttl", 15*time.Second, "drop workers that have not heartbeated within this window")
	maxAttempts := fs.Int("max-attempts", 8, "total lease attempts per shard before poison quarantine")
	poisonAfter := fs.Int("poison-after", 3, "distinct failed workers per shard before poison quarantine")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Minute, "per-attempt shard execution budget on a worker")
	cooldown := fs.Duration("cooldown", 5*time.Second, "bench an unreachable worker for this long after a transport failure")
	tracePath := fs.String("trace", "", "journal campaign/job/shard/lease lifecycle events as NDJSON to this file (empty = off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra listener, e.g. 127.0.0.1:6060 (empty = off; never mounted on the serving mux)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() > 0 {
		cli.Fatalf("dcoord: unexpected argument %q (all options are flags)", fs.Arg(0))
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			cli.Fatalf("dcoord: -trace: %v", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, nil)
	}
	if *pprofAddr != "" {
		bound, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			cli.Fatalf("dcoord: -pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dcoord: pprof on http://%s/debug/pprof/\n", bound)
	}

	var cache campaign.ShardCache
	if !*noCache {
		cache = farmd.InstrumentCache(farmd.NewMemCache(*cacheEntries), farmd.TierMem, reg)
		if *cacheDir != "" {
			disk, err := farmd.NewDirCacheLimit(*cacheDir, *cacheMaxMB<<20)
			if err != nil {
				cli.Fatalf("dcoord: %v", err)
			}
			cache = farmd.NewTiered(cache, farmd.InstrumentCache(disk, farmd.TierDisk, reg))
		}
	}

	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		Cache:           cache,
		JournalDir:      *journalDir,
		Workers:         *workers,
		MaxConcurrent:   *maxConcurrent,
		JobTimeout:      *jobTimeout,
		RowWriteTimeout: *rowTimeout,
		AuthToken:       *authToken,
		WorkerTTL:       *workerTTL,
		Metrics:         reg,
		Trace:           tracer,
		Dispatch: fabric.DispatchConfig{
			MaxAttempts:  *maxAttempts,
			PoisonAfter:  *poisonAfter,
			LeaseTimeout: *leaseTimeout,
			Cooldown:     *cooldown,
			JitterSeed:   time.Now().UnixNano(),
		},
	})
	if err != nil {
		cli.Fatalf("dcoord: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "dcoord: listening on %s (journal-dir=%q, cache-dir=%q)\n", *addr, *journalDir, *cacheDir)
	if err := fabric.Serve(ctx, *addr, coord, *drainTimeout); err != nil {
		cli.Fatalf("dcoord: %v", err)
	}
}
