// drmtsim simulates the dRMT (disaggregated RMT) architecture of §4 of the
// paper: it parses a mini-P4 program, builds the table dependency DAG,
// schedules matches and actions onto match+action processors, populates the
// centralized tables from an entries file, and runs randomly generated
// packets through the machine.
//
// Usage:
//
//	drmtsim -p4 router.p4 -entries router.entries -packets 1000 -processors 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"druzhba/internal/cli"
	"druzhba/internal/drmt"
	"druzhba/internal/p4"
)

func main() {
	fs := flag.NewFlagSet("drmtsim", flag.ExitOnError)
	p4Path := fs.String("p4", "", "mini-P4 program")
	entriesPath := fs.String("entries", "", "table entries file (empty = defaults only)")
	packets := fs.Int("packets", 100, "packets to generate")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	maxVal := fs.Int64("max", 0, "bound on generated field values (0 = field width)")
	processors := fs.Int("processors", 4, "match+action processors")
	deltaM := fs.Int("delta-match", 18, "cycles per match (Δ_M)")
	deltaA := fs.Int("delta-action", 2, "cycles per action (Δ_A)")
	matchCap := fs.Int("match-capacity", 8, "match issues per processor per cycle")
	actionCap := fs.Int("action-capacity", 32, "action issues per processor per cycle")
	optimal := fs.Bool("optimal", false, "use the branch-and-bound scheduler (small DAGs)")
	compat := fs.Bool("compat", false, "run on the map-based compatibility engine instead of the slot-compiled streaming engine (identical output, original speed)")
	showDAG := fs.Bool("dag", false, "print the table dependency DAG")
	showSchedule := fs.Bool("schedule", true, "print the computed schedule")
	cycles := fs.Bool("cycles", false, "print cycle-accurate replay statistics")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *p4Path == "" {
		cli.Fatalf("drmtsim: -p4 is required")
	}
	src, err := cli.ReadFile(*p4Path)
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	prog, err := p4.Parse(src)
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	g, err := p4.BuildDAG(prog)
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	if *showDAG {
		fmt.Print(g.String())
	}
	hw := drmt.HWConfig{
		Processors:     *processors,
		DeltaMatch:     *deltaM,
		DeltaAction:    *deltaA,
		MatchCapacity:  *matchCap,
		ActionCapacity: *actionCap,
	}
	costs := drmt.DefaultCosts(g)
	var sched *drmt.Schedule
	if *optimal {
		sched, err = drmt.OptimalSchedule(g, costs, hw)
	} else {
		sched, err = drmt.ListSchedule(g, costs, hw)
	}
	if err != nil {
		cli.Fatalf("drmtsim: scheduling failed: %v", err)
	}
	if *showSchedule {
		fmt.Print(drmt.FormatSchedule(sched))
	}

	entries := drmt.NewEntrySet()
	if *entriesPath != "" {
		text, err := cli.ReadFile(*entriesPath)
		if err != nil {
			cli.Fatalf("drmtsim: %v", err)
		}
		entries, err = drmt.ParseEntries(strings.NewReader(text), prog)
		if err != nil {
			cli.Fatalf("drmtsim: %v", err)
		}
	}
	m, err := drmt.NewMachine(prog, entries, hw, sched)
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	gen, err := drmt.NewTrafficGen(*seed, prog, *maxVal)
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	// Both engines consume the generator identically and produce identical
	// statistics and register state; the streaming default fills one reused
	// slot vector instead of materializing every packet.
	var stats *drmt.Stats
	if *compat {
		stats, err = m.Run(gen.Batch(*packets))
	} else {
		stats, err = m.RunStream(gen, *packets)
	}
	if err != nil {
		cli.Fatalf("drmtsim: %v", err)
	}
	fmt.Print(drmt.FormatStats(stats))
	for _, r := range prog.Registers {
		cells, _ := m.Register(r.Name)
		fmt.Printf("register %s: %v\n", r.Name, cells)
	}
	if *cycles {
		cs, err := m.CycleAccurate(*packets)
		if err != nil {
			cli.Fatalf("drmtsim: %v", err)
		}
		fmt.Print(drmt.FormatCycleStats(cs))
	}
}
