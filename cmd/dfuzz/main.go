// dfuzz runs the compiler-testing workflow of Fig. 5 of the paper: the same
// randomly generated input trace is fed to the simulated pipeline (built
// from machine code under test) and to a high-level Domino specification;
// the two output traces are compared and the first divergence is reported.
//
// Usage:
//
//	dfuzz -depth 2 -width 1 -stateful if_else_raw \
//	      -code sampling.mc -domino sampling.domino -fields sample=0 -n 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"druzhba/internal/cli"
	"druzhba/internal/core"
	"druzhba/internal/domino"
	"druzhba/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("dfuzz", flag.ExitOnError)
	cfg := cli.AddConfigFlags(fs)
	codePath := fs.String("code", "", "machine code file under test (- for stdin)")
	dominoPath := fs.String("domino", "", "Domino specification file")
	fieldsFlag := fs.String("fields", "", "packet field bindings, e.g. sample=0,seq=1")
	n := fs.Int("n", 50000, "number of random PHVs")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	maxVal := fs.Int64("max", 0, "bound on generated container values (0 = full width)")
	level := fs.String("level", "scc+inline", "optimization level")
	allContainers := fs.Bool("all-containers", false, "compare every container, not only spec-written fields")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	spec, err := cfg.Spec()
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	if *codePath == "" || *dominoPath == "" {
		cli.Fatalf("dfuzz: -code and -domino are required")
	}
	code, err := cli.LoadMachineCode(*codePath)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	lvl, err := cli.ParseLevel(*level)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	src, err := cli.ReadFile(*dominoPath)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	prog, err := domino.Parse(src)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	prog.Name = *dominoPath
	fields, err := cli.ParseFieldMap(*fieldsFlag)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	dspec, err := domino.NewPHVSpec(prog, fields, spec.Bits)
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	pipeline, err := core.Build(spec, code, lvl)
	if err != nil {
		cli.Fatalf("dfuzz: pipeline build failed (machine code incompatible with the pipeline): %v", err)
	}
	var containers []int
	if !*allContainers {
		containers, err = domino.WrittenContainers(prog, fields)
		if err != nil {
			cli.Fatalf("dfuzz: %v", err)
		}
	}
	rep, err := sim.FuzzRandom(pipeline, dspec, *seed, *n, *maxVal, sim.FuzzOptions{Containers: containers})
	if err != nil {
		cli.Fatalf("dfuzz: %v", err)
	}
	fmt.Println(rep)
	if !rep.Passed {
		os.Exit(1)
	}
}
