// dgenbench measures compiled pipeline descriptions: for a Table-1
// benchmark it emits the dgen-generated Go source at the SCC and
// SCC+inlining levels, compiles each into a standalone simulator binary
// with the Go toolchain, runs both over the same 50,000-PHV workload, and
// reports the runtimes.
//
// This is the ablation behind the paper's §3.4 observation that, once the
// pipeline description is compiled ("due to the aggressiveness of the Rust
// compiler optimizations"), function inlining adds no significant runtime
// improvement over SCC propagation — the compiler inlines the trivial
// helpers itself. The in-process interpreter (cmd/dbench) cannot show this
// because it pays per-node dispatch; the compiled path can.
//
// Usage:
//
//	dgenbench -program stateful-firewall -phvs 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"druzhba/internal/cli"
	"druzhba/internal/codegen"
	"druzhba/internal/core"
	"druzhba/internal/spec"
)

const driverTemplate = `package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"gen/pipeline"
)

func main() {
	n, _ := strconv.Atoi(os.Args[1])
	seed := int64(1)
	// xorshift PRNG so the workload is identical across binaries.
	next := func() int64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		v := seed & MAXMASK
		if v < 0 {
			v = -v
		}
		return v
	}
	phvs := make([][]int64, n)
	for i := range phvs {
		p := make([]int64, PHVLEN)
		for c := range p {
			p[c] = next()
		}
		phvs[i] = p
	}
	pipeline.Reset()
	start := time.Now()
	var sink int64
	for _, p := range phvs {
		out := pipeline.Execute(p)
		sink += out[0]
	}
	elapsed := time.Since(start)
	fmt.Printf("%d %d\n", elapsed.Milliseconds(), sink)
}
`

func main() {
	fs := flag.NewFlagSet("dgenbench", flag.ExitOnError)
	program := fs.String("program", "stateful-firewall", "Table 1 benchmark name")
	phvs := fs.Int("phvs", 50000, "PHVs per run")
	repeats := fs.Int("repeats", 3, "runs per binary (minimum reported)")
	keep := fs.Bool("keep", false, "keep the generated workspace")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	bm, err := spec.Lookup(*program)
	if err != nil {
		cli.Fatalf("dgenbench: %v", err)
	}
	hw, err := bm.Spec()
	if err != nil {
		cli.Fatalf("dgenbench: %v", err)
	}
	code, err := bm.MachineCode()
	if err != nil {
		cli.Fatalf("dgenbench: %v", err)
	}

	dir, err := os.MkdirTemp("", "dgenbench")
	if err != nil {
		cli.Fatalf("dgenbench: %v", err)
	}
	if *keep {
		fmt.Fprintf(os.Stderr, "dgenbench: workspace %s\n", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	phvLen := hw.PHVLen
	if phvLen == 0 {
		phvLen = hw.Width
	}
	maxMask := int64(1)<<62 - 1
	if bm.MaxInput > 0 {
		// Round the bound down to a mask so the driver stays branch-free.
		m := int64(1)
		for m<<1 <= bm.MaxInput {
			m <<= 1
		}
		maxMask = m - 1
	}

	results := map[core.OptLevel]time.Duration{}
	var outputs []string
	for _, level := range []core.OptLevel{core.SCCPropagation, core.SCCInlining} {
		src, err := codegen.Generate(hw, code, codegen.Options{Level: level, Package: "pipeline"})
		if err != nil {
			cli.Fatalf("dgenbench: %v", err)
		}
		work := filepath.Join(dir, strings.ReplaceAll(level.String(), "+", "_"))
		if err := os.MkdirAll(filepath.Join(work, "pipeline"), 0o755); err != nil {
			cli.Fatalf("dgenbench: %v", err)
		}
		files := map[string]string{
			"go.mod":               "module gen\n\ngo 1.22\n",
			"pipeline/pipeline.go": src,
			"main.go": strings.NewReplacer(
				"PHVLEN", strconv.Itoa(phvLen),
				"MAXMASK", strconv.FormatInt(maxMask, 10),
			).Replace(driverTemplate),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(work, name), []byte(content), 0o644); err != nil {
				cli.Fatalf("dgenbench: %v", err)
			}
		}
		bin := filepath.Join(work, "simbin")
		build := exec.Command("go", "build", "-o", bin, ".")
		build.Dir = work
		if out, err := build.CombinedOutput(); err != nil {
			cli.Fatalf("dgenbench: compiling %s: %v\n%s", level, err, out)
		}
		best := time.Duration(0)
		var lastOut string
		for r := 0; r < *repeats; r++ {
			run := exec.Command(bin, strconv.Itoa(*phvs))
			out, err := run.Output()
			if err != nil {
				cli.Fatalf("dgenbench: running %s: %v", level, err)
			}
			fields := strings.Fields(string(out))
			ms, err := strconv.Atoi(fields[0])
			if err != nil {
				cli.Fatalf("dgenbench: bad output %q", out)
			}
			lastOut = fields[1]
			if d := time.Duration(ms) * time.Millisecond; best == 0 || d < best {
				best = d
			}
		}
		results[level] = best
		outputs = append(outputs, lastOut)
		fmt.Printf("%-12s compiled pipeline: %4d ms for %d PHVs (checksum %s)\n",
			level.String()+":", best.Milliseconds(), *phvs, lastOut)
	}
	if len(outputs) == 2 && outputs[0] != outputs[1] {
		cli.Fatalf("dgenbench: v2 and v3 binaries disagree (checksums %s vs %s)", outputs[0], outputs[1])
	}
	v2, v3 := results[core.SCCPropagation], results[core.SCCInlining]
	if v3 > 0 {
		fmt.Printf("inlining speedup over SCC in compiled code: %.2fx\n", float64(v2)/float64(v3))
	}
}
